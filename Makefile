# Local dev and CI run the exact same commands: the ci.yml jobs each invoke
# one of these targets.

GO ?= go

.PHONY: build test race race-kernels chaos bench microbench bench-codec bench-l0 bench-query bench-serve bench-gate bench-baseline fuzz-codec serve-e2e profile lint lint-vet lint-fmt fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector run with coverage, the CI test job. Coverage lands in
# coverage.out (uploaded as a CI artifact).
race:
	$(GO) test -race -coverprofile=coverage.out -covermode=atomic ./...

# Race-detector sweep of the kernel-dispatched packages under each forced
# variant. REPRO_KERNEL names a variant the machine may not have (e.g. neon
# on amd64) — dispatch then falls back to scalar, so every leg is valid
# everywhere and the sweep additionally exercises that fallback under -race.
race-kernels:
	for k in scalar avx2 avx512 neon; do \
		echo "== REPRO_KERNEL=$$k =="; \
		REPRO_KERNEL=$$k $(GO) test -race \
			./internal/kernel ./internal/field ./internal/hash \
			./internal/prng ./internal/sparse ./internal/engine || exit 1; \
	done

# Chaos leg: the deterministic fault-injection property suites under -race.
# Each sweeps seeded fault schedules (torn checkpoint writes, fsync errors,
# bit flips, journal faults, worker panics, forced queue overflow, merge
# failures) and requires every run to end exact or with a typed error. A
# failing seed prints a REPRO_FAULTS=seed:rate one-liner that replays
# exactly that schedule.
chaos:
	$(GO) test -race -run 'TestChaosFaultSeeds|TestChaosWithoutStore|TestDurableKillRestartExactness|TestWorkerPanic' \
		-count 1 ./internal/engine
	$(GO) test -race -run 'TestKillRestartExactness|TestInjected' \
		-count 1 ./internal/checkpoint
	$(GO) test -race -run 'TestChaosServerFaultSeeds' \
		-count 1 ./internal/sketchd

# One iteration of every benchmark — a smoke test that the bench harness and
# the serial-vs-engine ingestion comparison still run, not a measurement.
bench:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# Kernel micro-benchmarks (field multiply / exponentiation, scalar vs
# flat-batch hash kernels, count-sketch hot paths, the PR-3 Nisan
# prefix-stack PRG kernel and transposed syndrome kernel) at a benchtime
# large enough to be meaningful in CI; the zero-allocation contract is
# enforced by the accompanying tests, the numbers land in the job log.
# BENCH_PR2.json / BENCH_PR3.json / BENCH_PR4.json hold the committed
# baseline-vs-after snapshots. bench-query (the PR-4 query-side suite) is
# part of the umbrella.
microbench: bench-query bench-codec bench-serve
	$(GO) test -run '^$$' -bench 'Mul$$|Pow|Eval|Scalar|Batch|Block' -benchtime 1000x \
		./internal/field ./internal/hash ./internal/countsketch \
		./internal/prng ./internal/sparse
	$(GO) test -run '^$$' -bench 'Kernel' -benchtime 1000x ./internal/kernel

# Wire-format microbenchmarks: raw codec framing throughput, per-kind
# marshal/unmarshal ns and wire bytes, and the full sharded
# export -> Load -> merge round (the distributed pattern's hot path).
bench-codec:
	$(GO) test -run '^$$' -bench 'Codec' -benchtime 2000x ./internal/codec
	$(GO) test -run '^$$' -bench 'MarshalSketch|UnmarshalSketch|ShardedExportMerge' -benchtime 20x .

# Serving-tier benchmarks: both sketchd ingest paths end-to-end through
# real HTTP — raw frames into the sharded engine, and pre-folded sketch
# uploads through the hierarchical merge tree. Also in the bench-gate set.
bench-serve:
	$(GO) test -run '^$$' -bench 'ServeIngest' -benchtime 20x .

# Short-budget fuzz smoke for the wire format: the codec decoder surface and
# the public Load (header validation, config sanity bounds, payload framing).
# CI runs this; locally raise -fuzztime for a real hunt.
fuzz-codec:
	$(GO) test -run '^$$' -fuzz FuzzDecoder -fuzztime 15s ./internal/codec
	$(GO) test -run '^$$' -fuzz FuzzLoad -fuzztime 15s .
	$(GO) test -run '^$$' -fuzz FuzzIngestFrame -fuzztime 15s ./internal/sketchd
	$(GO) test -run '^$$' -fuzz FuzzNegotiate -fuzztime 10s ./internal/sketchd

# Serving-tier end-to-end (the CI serve-e2e job): builds the real sketchd,
# sketchload and workload binaries, then (1) drives 10k concurrent
# simulated exporters against a live server and requires the merged sketch
# to be byte-identical to serial ingestion, (2) SIGKILLs the server
# mid-ingest and requires the restart to serve exactly the last sealed
# generation plus the journal tail, (3) exercises cmd/workload -push.
# SERVE_E2E_SMOKE=1 runs the same paths under a lighter load.
serve-e2e:
	$(GO) test -count 1 -run 'TestSketchd|TestWorkloadPushBinary' ./integration

# The L0 fast-path benchmarks (the PR-3 headline): the 1M-update serial and
# engine ingest through the Theorem 2 sampler, plus the prng/sparse kernels
# underneath and the graphsketch edge-ingest path built on top.
bench-l0:
	$(GO) test -run '^$$' -bench 'BenchmarkIngestL0' -benchtime 2x .
	$(GO) test -run '^$$' -bench 'Block' -benchtime 100000x ./internal/prng
	$(GO) test -run '^$$' -bench 'ProcessBatchS10|ProcessScalarS10' -benchtime 2000x ./internal/sparse
	$(GO) test -run '^$$' -bench 'GraphIngest' -benchtime 20x ./internal/graphsketch

# Query-side benchmarks (the PR-4 headline): memoized vs dirty L0 sampling,
# the finite-difference recovery scan, and the end-to-end graphsketch
# connectivity and duplicates queries built on top (the root BenchmarkQuery*
# suite).
bench-query:
	$(GO) test -run '^$$' -bench 'L0SamplerSample' -benchtime 200x ./internal/core
	$(GO) test -run '^$$' -bench 'RecoverScan|RecoverS8N4096' -benchtime 200x ./internal/sparse
	$(GO) test -run '^$$' -bench 'BenchmarkQuery' -benchtime 20x .

# Benchmark regression gate (the CI bench-gate job): run the headline
# ingest/query suite (3 repetitions, best run wins) and compare against the
# committed BENCH_BASELINE.json, failing on a >10% geomean regression, any
# single benchmark >1.5x its baseline, or a missing benchmark. On PRs the
# CI job swaps the committed baseline for one measured from the PR base on
# the same runner. See cmd/benchgate for -input / -threshold / -cap.
bench-gate:
	$(GO) run ./cmd/benchgate -baseline BENCH_BASELINE.json

# Refresh the committed baseline from the current machine. Run on a quiet
# machine of the same class as the gate runner, then commit the JSON
# alongside the change that moved the numbers.
bench-baseline:
	$(GO) run ./cmd/benchgate -baseline BENCH_BASELINE.json -update

# CPU profile of the 10M-update batched ingest (the headline workload):
# writes cpu.out for `go tool pprof cpu.out`.
profile:
	$(GO) test -run '^$$' -bench 'BenchmarkIngestSerialBatched$$' -benchtime 2x \
		-cpuprofile cpu.out .

lint: lint-vet lint-fmt

lint-vet:
	$(GO) vet ./...

lint-fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .
