// Network-flow heavy hitters under inserts and deletes (strict turnstile).
//
// A flow monitor tracks bytes per source as connections open (+bytes) and
// get corrected or rolled back (-bytes). The §4.4 count-sketch heavy-hitters
// structure reports every source holding a φ fraction of the L1 mass — and,
// because it is a linear sketch, deletions are first-class: the report
// reflects the *net* traffic, which no insertion-only counter structure
// (e.g. Misra-Gries) can do.
//
// Run: go run ./examples/netflow
package main

import (
	"fmt"
	"math/rand/v2"
	"sort"

	streamsample "repro"
)

func main() {
	const sources = 4096
	const phi = 0.2
	r := rand.New(rand.NewPCG(7, 7))

	hh := streamsample.NewHeavyHitters(1, phi, sources, streamsample.WithSeed(11))

	// Background: every source sends a little.
	truth := make([]int64, sources)
	for i := 0; i < sources; i++ {
		b := int64(1 + r.IntN(20))
		truth[i] += b
		hh.Update(i, b)
	}
	// Two sources spike...
	for _, spike := range []int{111, 2222} {
		truth[spike] += 50_000
		hh.Update(spike, 50_000)
	}
	// ...and one of them turns out to be a misattributed batch that gets
	// rolled back — deletions the sketch must honor.
	truth[2222] -= 50_000
	hh.Update(2222, -50_000)

	var l1 int64
	for _, v := range truth {
		l1 += v
	}
	report := hh.Report()
	sort.Ints(report)

	fmt.Printf("net L1 mass: %d bytes over %d sources, φ = %.2f (threshold %d bytes)\n",
		l1, sources, phi, int64(phi*float64(l1)))
	fmt.Printf("reported heavy sources: %v\n", report)
	fmt.Println("expected: [111] — source 2222's spike was deleted and must NOT appear")

	good := len(report) == 1 && report[0] == 111
	fmt.Printf("report correct: %v   (sketch: %d bits)\n", good, hh.SpaceBits())
}
