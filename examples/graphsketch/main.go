// Dynamic graph connectivity from L0 samplers — the flagship downstream
// application of the paper's Theorem 2 sampler (Ahn-Guha-McGregor, SODA'12,
// builds exactly on such samplers; this example implements the idea on this
// repository's public API).
//
// Encode each vertex v as a vector a_v over edge slots {u < w}:
//
//	a_v[(u,w)] = +1 if v = u and edge (u,w) present,
//	             -1 if v = w and edge (u,w) present,
//	              0 otherwise.
//
// For any vertex set S, sum_{v in S} a_v has support exactly the cut edges
// of S: edges inside S cancel (+1 + -1), edges leaving S survive. So an
// L0 sample of the *merged* sketches of S returns a random cut edge — which
// is all Borůvka's algorithm needs to build a spanning forest. Edge
// deletions are plain -1/+1 updates, so the sketch survives churn that
// breaks incremental union-find.
//
// Each Borůvka round must use a fresh sketch copy (sampling from a sketch
// conditioned on earlier answers would bias it), hence the log(V) batches.
//
// Run: go run ./examples/graphsketch
package main

import (
	"fmt"
	"math/rand/v2"

	streamsample "repro"
)

// edgeSlot numbers the pair (u,w), u < w, in the triangular enumeration.
func edgeSlot(u, w, v int) int {
	if u > w {
		u, w = w, u
	}
	// slot = u*V - u(u+1)/2 + (w-u-1)
	return u*v - u*(u+1)/2 + (w - u - 1)
}

// vertexSketches holds one sketch copy per Borůvka round for one vertex.
type vertexSketches struct {
	rounds []*streamsample.L0Sampler
}

func main() {
	const V = 64
	slots := V * (V - 1) / 2
	rounds := 7 // ceil(log2 V) + 1
	r := rand.New(rand.NewPCG(5, 12))

	// Build a random graph that is connected by construction (a scrambled
	// spanning path plus random chords), then delete some chords to show
	// the sketch handles churn.
	perm := r.Perm(V)
	type edge struct{ u, w int }
	var edges []edge
	for i := 1; i < V; i++ {
		edges = append(edges, edge{perm[i-1], perm[i]})
	}
	var chords []edge
	for k := 0; k < 3*V; k++ {
		u, w := r.IntN(V), r.IntN(V)
		if u != w {
			chords = append(chords, edge{u, w})
		}
	}

	// Per-vertex, per-round sketches. All sketches share one seed so they
	// are mergeable.
	sk := make([]vertexSketches, V)
	for v := 0; v < V; v++ {
		sk[v].rounds = make([]*streamsample.L0Sampler, rounds)
		for t := 0; t < rounds; t++ {
			sk[v].rounds[t] = streamsample.NewL0Sampler(slots,
				streamsample.WithSeed(uint64(1000+t)), streamsample.WithDelta(0.1))
		}
	}
	apply := func(e edge, sign int64) {
		slot := edgeSlot(e.u, e.w, V)
		lo, hi := e.u, e.w
		if lo > hi {
			lo, hi = hi, lo
		}
		for t := 0; t < rounds; t++ {
			sk[lo].rounds[t].Update(slot, sign)
			sk[hi].rounds[t].Update(slot, -sign)
		}
	}
	for _, e := range edges {
		apply(e, 1)
	}
	for _, e := range chords {
		apply(e, 1)
	}
	// Churn: delete all chords again — connectivity now rests on the path.
	for _, e := range chords {
		apply(e, -1)
	}
	fmt.Printf("graph: %d vertices, %d path edges, %d chords inserted then deleted\n",
		V, len(edges), len(chords))

	// Borůvka over sketches: components merge by summing sketches.
	comp := make([]int, V)
	for v := range comp {
		comp[v] = v
	}
	find := func(v int) int {
		for comp[v] != v {
			comp[v] = comp[comp[v]]
			v = comp[v]
		}
		return v
	}
	components := V
	for t := 0; t < rounds && components > 1; t++ {
		// Merge this round's sketches per component.
		merged := map[int]*streamsample.L0Sampler{}
		for v := 0; v < V; v++ {
			c := find(v)
			if merged[c] == nil {
				merged[c] = sk[v].rounds[t]
			} else if err := merged[c].Merge(sk[v].rounds[t]); err != nil {
				panic(err) // same-seed by construction
			}
		}
		// Sample one outgoing edge per component and contract.
		joins := 0
		for c, m := range merged {
			slot, _, ok := m.Sample()
			if !ok {
				continue // isolated or sampler failure this round
			}
			u, w := slotToEdge(slot, V)
			cu, cw := find(u), find(w)
			if cu != cw {
				comp[cu] = cw
				components--
				joins++
			}
			_ = c
		}
		fmt.Printf("round %d: %d merges, %d components left\n", t, joins, components)
	}
	fmt.Printf("spanning forest complete: connected = %v (expected true)\n", components == 1)
}

// slotToEdge inverts edgeSlot.
func slotToEdge(slot, v int) (int, int) {
	u := 0
	for {
		rowLen := v - u - 1
		if slot < rowLen {
			return u, u + 1 + slot
		}
		slot -= rowLen
		u++
	}
}
