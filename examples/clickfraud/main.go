// Click-fraud detection: find a duplicated click identifier in a stream too
// large to store — the motivating application the paper inherits from
// Metwally, Agrawal and El Abbadi [21] (§1, §3).
//
// An ad network issues n single-use click tokens; honest traffic presents
// each token at most once, a replaying fraudster presents some token twice.
// Storing the set of seen tokens costs Ω(n) bits; the Theorem 3 finder uses
// O(log² n · log(1/δ)) bits — asymptotically exponentially less.
//
// Run: go run ./examples/clickfraud
package main

import (
	"fmt"
	"math"
	"math/rand/v2"

	streamsample "repro"
)

func main() {
	const tokens = 20_000
	r := rand.New(rand.NewPCG(2024, 6))

	// The fraudster replays one token; the stream carries every token once
	// plus that replay — length n+1, the exact Theorem 3 regime.
	fraudToken := r.IntN(tokens)
	clicks := r.Perm(tokens)
	clicks = append(clicks, fraudToken)
	r.Shuffle(len(clicks), func(a, b int) { clicks[a], clicks[b] = clicks[b], clicks[a] })

	finder := streamsample.NewDuplicateFinder(tokens,
		streamsample.WithSeed(99), streamsample.WithDelta(0.1))
	for _, c := range clicks {
		finder.Observe(c)
	}

	fmt.Printf("stream: %d clicks over %d tokens (fraudulent token: %d)\n",
		len(clicks), tokens, fraudToken)
	if letter, ok := finder.Find(); ok {
		fmt.Printf("finder reports replayed token: %d  (correct: %v)\n",
			letter, letter == fraudToken)
	} else {
		fmt.Println("finder failed this run (probability ≤ δ = 0.1)")
	}

	// Space: the sketch is Θ(log² n) bits against the bitmap's Θ(n). At
	// research-grade constants the crossover sits beyond this demo's n, so
	// report the scaling rather than a cherry-picked ratio.
	logn := math.Log2(tokens)
	fmt.Printf("space: sketch %d bits (≈ %.0f·log² n) vs exact bitmap %d bits (= n)\n",
		finder.SpaceBits(), float64(finder.SpaceBits())/(logn*logn), tokens)
	fmt.Println("sketch grows with log² n: another 1000x more tokens costs the")
	fmt.Println("bitmap 1000x more space but the sketch only ~2x.")
}
