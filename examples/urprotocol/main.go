// Sketches as messages: two machines find where their datasets differ by
// exchanging one L0-sampler state (Proposition 5 of the paper), instead of
// shipping the data.
//
// Alice and Bob each hold a replica of a large boolean table (say, a
// feature-flag or inventory snapshot) that should be identical but has
// drifted. Shipping either table costs n bits; diffing via sketches costs
// O(log² n) bits per round and names an actual drifted key, which is what
// an operator needs to start reconciling.
//
// This example runs the real byte-level handoff (ExportState/ImportState on
// the internal sampler) rather than a simulation: the "network message" is
// a Go []byte.
//
// Run: go run ./examples/urprotocol
package main

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/stream"
)

func main() {
	const n = 1 << 16 // 65536 keys
	r := rand.New(rand.NewPCG(4, 2))

	// Two replicas, drifted on a handful of keys.
	alice := make([]int, n)
	for i := range alice {
		alice[i] = r.IntN(2)
	}
	bob := append([]int(nil), alice...)
	drifted := map[int]bool{}
	for len(drifted) < 5 {
		k := r.IntN(n)
		if !drifted[k] {
			bob[k] = 1 - bob[k]
			drifted[k] = true
		}
	}
	fmt.Printf("replicas of %d keys, drifted keys: %v\n", n, keys(drifted))

	// Shared randomness: both sides construct the same sampler shell from a
	// pre-agreed seed (in production: a seed exchanged once, out of band).
	const seed = 0xDEADBEEF
	mk := func() *core.L0Sampler {
		return core.NewL0Sampler(core.L0Config{N: n, Delta: 0.05},
			rand.New(rand.NewPCG(seed, seed>>7)))
	}

	// Alice sketches her replica and serializes the counters.
	aliceSketch := mk()
	for i, v := range alice {
		if v != 0 {
			aliceSketch.Process(stream.Update{Index: i, Delta: int64(v)})
		}
	}
	message := aliceSketch.ExportState()
	fmt.Printf("Alice -> Bob: %d bytes (vs %d bytes to ship the table)\n",
		len(message), n/8)

	// Bob imports, subtracts his replica, and samples the difference.
	bobSketch := mk()
	if err := bobSketch.ImportState(message); err != nil {
		panic(err)
	}
	for i, v := range bob {
		if v != 0 {
			bobSketch.Process(stream.Update{Index: i, Delta: -int64(v)})
		}
	}
	out, ok := bobSketch.Sample()
	if !ok {
		fmt.Println("protocol failed this run (probability ≤ δ = 0.05)")
		return
	}
	fmt.Printf("Bob learns drifted key %d (actually drifted: %v)\n",
		out.Index, drifted[out.Index])
	fmt.Println("re-running with fresh seeds enumerates further drifted keys;")
	fmt.Println("Theorem 6 of the paper proves ~log²(n) bytes is unavoidable.")
}

func keys(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
