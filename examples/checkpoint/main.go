// Checkpoint: survive a process kill in the middle of a sharded ingest.
//
// The engine's shard replicas are serializable linear sketches, so a long
// ingest can bind a durable checkpoint store (internal/checkpoint): every
// accepted batch is journaled write-ahead, and a full generation — one blob
// per shard, written atomically via write-temp + fsync + rename — lands
// every CheckpointEvery updates. After a crash a fresh engine binds the
// same directory and adopts the last good generation plus the journal tail;
// because the sketches are linear, the resumed result is byte-for-byte the
// result of an uninterrupted run, no matter where the process died.
//
// This example ingests a 200k-update turnstile stream, kills the engine
// mid-stream WITHOUT a final checkpoint (the worst case: only the journal
// survives), resumes from disk in a "new process", and shows that the
// resumed sampler answers exactly like an uninterrupted one.
//
// Run: go run ./examples/checkpoint
package main

import (
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"

	streamsample "repro"
	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/stream"
)

const (
	n      = 4096
	length = 200_000
	shards = 4
	seed   = 2024
)

// factory builds one same-seed L0 sampler replica per shard: identical
// WithSeed values make the replicas mergeable and checkpoints restorable.
func factory(int) *streamsample.L0Sampler {
	return streamsample.NewL0Sampler(n, streamsample.WithSeed(seed))
}

func merge(dst, src *streamsample.L0Sampler) error { return dst.Merge(src) }

func newEngine() *engine.Engine[*streamsample.L0Sampler] {
	// A generation every 50k updates; between generations the write-ahead
	// journal carries every accepted batch.
	return engine.New(engine.Config{Shards: shards, CheckpointEvery: 50_000}, factory, merge)
}

func bind(e *engine.Engine[*streamsample.L0Sampler], dir string) *checkpoint.Store {
	store, err := checkpoint.Open(dir, checkpoint.Options{})
	if err != nil {
		panic(err)
	}
	if err := e.CheckpointTo(store,
		(*streamsample.L0Sampler).MarshalBinary,
		(*streamsample.L0Sampler).UnmarshalBinary); err != nil {
		panic(err)
	}
	return store
}

func main() {
	st := stream.RandomTurnstile(n, length, 100, rand.New(rand.NewPCG(7, 9)))
	cut := 130_000 // where the crash will strike — NOT a checkpoint boundary

	dir, err := os.MkdirTemp("", "checkpoint-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// Reference: one uninterrupted run over the whole stream.
	reference := newEngine()
	reference.Feed(st)
	refSketch, err := reference.Results()
	if err != nil {
		panic(err)
	}
	refIdx, refVal, refOK := refSketch.Sample()
	fmt.Printf("uninterrupted: sample=(%d,%d) ok=%v\n", refIdx, refVal, refOK)

	// Doomed run: bind the durable store, ingest 130k updates in 10k-update
	// batches (periodic checkpoints land on batch boundaries), die. The last
	// generation covers the first 100k; the journal tail carries the rest.
	doomed := newEngine()
	store := bind(doomed, dir)
	for i := 0; i < cut; i += 10_000 {
		doomed.Feed(st[i : i+10_000])
	}
	stats := doomed.Stats()
	fmt.Printf("killed at update %d: %d generations on disk, latest %d\n",
		cut, stats.Checkpoints, stats.Generation)
	doomed.Close() // the crash: every in-memory replica is gone
	store.Close()
	entries, _ := filepath.Glob(filepath.Join(dir, "*"))
	fmt.Printf("simulated crash: in-memory state lost, %d files survive\n", len(entries))

	// Resumed run, as a new process would do it: rebuild the engine, bind
	// the same directory — CheckpointTo adopts the last good generation and
	// replays the journal tail — then feed only the suffix the doomed
	// process never accepted. (A real pipeline stores its source offset next
	// to the checkpoint; here we know the doomed run accepted exactly cut
	// updates.)
	resumed := newEngine()
	store2 := bind(resumed, dir)
	defer store2.Close()
	resumed.Feed(st[cut:])
	resSketch, err := resumed.Results()
	if err != nil {
		panic(err)
	}
	resIdx, resVal, resOK := resSketch.Sample()
	fmt.Printf("resumed:       sample=(%d,%d) ok=%v\n", resIdx, resVal, resOK)

	if refIdx == resIdx && refVal == resVal && refOK == resOK {
		fmt.Println("resumed run matches the uninterrupted run exactly")
	} else {
		fmt.Println("MISMATCH: resumed run diverged from the uninterrupted run")
	}
}
