// Checkpoint: survive a crash in the middle of a sharded ingest.
//
// The engine's shard replicas are serializable linear sketches, so a long
// ingest can checkpoint periodically with Snapshot — one MarshalBinary blob
// per shard — and, after a crash, a fresh engine Restores the blobs and
// replays only the updates that arrived after the checkpoint. Because the
// sketches are linear and the shard routing is deterministic, the resumed
// result is byte-for-byte the result of an uninterrupted run.
//
// This example ingests a 200k-update turnstile stream, checkpoints halfway,
// kills the engine (simulating a process crash that loses all in-memory
// state), resumes from the snapshot in a "new process", and shows that the
// resumed sampler answers exactly like an uninterrupted one.
//
// Run: go run ./examples/checkpoint
package main

import (
	"fmt"
	"math/rand/v2"

	streamsample "repro"
	"repro/internal/engine"
	"repro/internal/stream"
)

const (
	n      = 4096
	length = 200_000
	shards = 4
	seed   = 2024
)

// factory builds one same-seed L0 sampler replica per shard: identical
// WithSeed values make the replicas mergeable and snapshots restorable.
func factory(int) *streamsample.L0Sampler {
	return streamsample.NewL0Sampler(n, streamsample.WithSeed(seed))
}

func merge(dst, src *streamsample.L0Sampler) error { return dst.Merge(src) }

func newEngine() *engine.Engine[*streamsample.L0Sampler] {
	return engine.New(engine.Config{Shards: shards}, factory, merge)
}

func main() {
	st := stream.RandomTurnstile(n, length, 100, rand.New(rand.NewPCG(7, 9)))
	cut := len(st) / 2

	// Reference: one uninterrupted run over the whole stream.
	reference := newEngine()
	reference.Feed(st)
	refSketch, err := reference.Results()
	if err != nil {
		panic(err)
	}
	refIdx, refVal, refOK := refSketch.Sample()
	fmt.Printf("uninterrupted: sample=(%d,%d) ok=%v\n", refIdx, refVal, refOK)

	// Crashing run: ingest half, checkpoint, die.
	doomed := newEngine()
	doomed.Feed(st[:cut])
	snapshot, err := doomed.Snapshot((*streamsample.L0Sampler).MarshalBinary)
	if err != nil {
		panic(err)
	}
	var snapshotBytes int
	for _, blob := range snapshot {
		snapshotBytes += len(blob)
	}
	fmt.Printf("checkpoint at update %d: %d shard blobs, %d bytes total\n",
		cut, len(snapshot), snapshotBytes)
	doomed.Close() // the crash: every in-memory replica is gone
	fmt.Println("simulated crash: engine closed, in-memory state lost")

	// Resumed run, as a new process would do it: rebuild the engine, restore
	// the checkpoint into the replicas, replay only the post-checkpoint
	// suffix of the stream.
	resumed := newEngine()
	if err := resumed.Restore(snapshot, (*streamsample.L0Sampler).UnmarshalBinary); err != nil {
		panic(err)
	}
	resumed.Feed(st[cut:])
	resSketch, err := resumed.Results()
	if err != nil {
		panic(err)
	}
	resIdx, resVal, resOK := resSketch.Sample()
	fmt.Printf("resumed:       sample=(%d,%d) ok=%v\n", resIdx, resVal, resOK)

	if refIdx == resIdx && refVal == resVal && refOK == resOK {
		fmt.Println("resumed run matches the uninterrupted run exactly")
	} else {
		fmt.Println("MISMATCH: resumed run diverged from the uninterrupted run")
	}
}
