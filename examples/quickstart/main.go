// Quickstart: sample from a vector under insertions AND deletions.
//
// Classical reservoir sampling handles insertion-only streams in O(1) words,
// but breaks as soon as updates can be negative. This walk-through builds a
// turnstile vector with heavy churn and shows that the Lp sampler of
// Theorem 1 still samples from the *final* vector, and the L0 sampler of
// Theorem 2 returns exact values of surviving coordinates.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	streamsample "repro"
)

func main() {
	const n = 1024

	// --- L1 sampling under churn -----------------------------------------
	s := streamsample.NewLpSampler(1, n, streamsample.WithSeed(42), streamsample.WithEps(0.25))

	// Insert mass everywhere...
	for i := 0; i < n; i++ {
		s.Update(i, 10)
	}
	// ...then delete it again except on three survivors with skewed weights.
	for i := 0; i < n; i++ {
		switch i {
		case 100:
			s.Update(i, 990) // final weight 1000
		case 500:
			s.Update(i, 290) // final weight 300
		case 900:
			s.Update(i, 90) // final weight 100
		default:
			s.Update(i, -10) // final weight 0
		}
	}

	// Across independently seeded sketches, index 100 comes out ~71% of the
	// time, 500 ~21%, 900 ~7% — the L1 distribution of the final vector.
	fmt.Println("L1 sample from the post-churn vector:")
	if idx, est, ok := s.Sample(); ok {
		fmt.Printf("  sampled index %d, estimated value %.1f\n", idx, est)
	} else {
		fmt.Println("  sampler failed this round (probability ≤ δ); re-run with another seed")
	}

	// --- L0 sampling: uniform over survivors, exact values ---------------
	l0 := streamsample.NewL0Sampler(n, streamsample.WithSeed(7))
	for i := 0; i < n; i++ {
		l0.Update(i, int64(i+1))
	}
	for i := 0; i < n; i++ {
		if i%97 != 0 { // keep every 97th coordinate
			l0.Update(i, -int64(i+1))
		}
	}
	if idx, val, ok := l0.Sample(); ok {
		fmt.Printf("L0 sample: index %d with exact value %d (index %% 97 == 0: %v)\n",
			idx, val, idx%97 == 0)
	}

	// --- Space accounting --------------------------------------------------
	fmt.Printf("sketch sizes: L1 sampler %d bits, L0 sampler %d bits (n = %d)\n",
		s.SpaceBits(), l0.SpaceBits(), n)
	fmt.Println("both are polylog(n): the whole point of the paper.")
}
