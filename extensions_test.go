package streamsample

import (
	"math"
	"testing"
)

func TestPublicTwoPassL0Sampler(t *testing.T) {
	s := NewTwoPassL0Sampler(256, WithSeed(5), WithDelta(0.2))
	feed := func() {
		for i := 0; i < 256; i += 8 {
			s.Update(i, int64(i+1))
		}
	}
	feed()
	s.EndPass1()
	feed()
	idx, val, ok := s.Sample()
	if !ok {
		t.Fatal("two-pass sampler failed")
	}
	if idx%8 != 0 || val != int64(idx+1) {
		t.Fatalf("sample (%d,%d) inconsistent with the planted support", idx, val)
	}
}

func TestPublicFpEstimator(t *testing.T) {
	e := NewFpEstimator(3, 128, 12, WithSeed(9))
	for i := 0; i < 128; i++ {
		e.Update(i, 2)
	}
	e.Update(40, 998) // x_40 = 1000
	got, ok := e.Estimate()
	if !ok {
		t.Fatal("estimator failed")
	}
	truth := math.Pow(1000, 3) + 127*math.Pow(2, 3)
	if got < truth/4 || got > truth*4 {
		t.Fatalf("F3 = %.3g, truth %.3g", got, truth)
	}
	if e.SpaceBits() <= 0 {
		t.Error("SpaceBits must be positive")
	}
}

func TestPublicFpEstimatorZero(t *testing.T) {
	e := NewFpEstimator(4, 32, 4, WithSeed(10))
	if _, ok := e.Estimate(); ok {
		t.Fatal("zero vector must not estimate")
	}
}
