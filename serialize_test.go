package streamsample

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"

	"repro/internal/codec"
)

// sketchCase builds one seeded instance of every public kind, feeds it a
// deterministic stream, and knows how to compare query behavior between two
// instances of the kind.
type sketchCase struct {
	name  string
	build func(seed uint64) Sketch
	feed  func(s Sketch)
	// query runs the kind's read API and returns a comparable digest.
	query func(s Sketch) any
}

func feedTurnstile(s Sketch, seed uint64, n, length int) {
	r := rand.New(rand.NewPCG(seed, seed+1))
	batch := make([]Update, 0, 64)
	for i := 0; i < length; i++ {
		d := r.Int64N(40) - 20
		if d == 0 {
			d = 1
		}
		batch = append(batch, Update{Index: r.IntN(n), Delta: d})
		if len(batch) == 64 {
			s.ProcessBatch(batch)
			batch = batch[:0]
		}
	}
	s.ProcessBatch(batch)
}

func sketchCases() []sketchCase {
	const n = 96
	return []sketchCase{
		{
			name:  "LpSampler",
			build: func(seed uint64) Sketch { return NewLpSampler(1.2, n, WithSeed(seed), WithEps(0.3), WithDelta(0.2)) },
			feed:  func(s Sketch) { feedTurnstile(s, 3, n, 500) },
			query: func(s Sketch) any {
				i, est, ok := s.(*LpSampler).Sample()
				return [3]any{i, est, ok}
			},
		},
		{
			name:  "L0Sampler",
			build: func(seed uint64) Sketch { return NewL0Sampler(n, WithSeed(seed), WithDelta(0.2)) },
			feed:  func(s Sketch) { feedTurnstile(s, 4, n, 400) },
			query: func(s Sketch) any {
				i, v, ok := s.(*L0Sampler).Sample()
				return [3]any{i, v, ok}
			},
		},
		{
			name:  "L0SamplerNested",
			build: func(seed uint64) Sketch { return NewL0Sampler(n, WithSeed(seed), WithNestedLevels(), WithSparsity(6)) },
			feed:  func(s Sketch) { feedTurnstile(s, 5, n, 400) },
			query: func(s Sketch) any {
				i, v, ok := s.(*L0Sampler).Sample()
				return [3]any{i, v, ok}
			},
		},
		{
			name:  "DuplicateFinder",
			build: func(seed uint64) Sketch { return NewDuplicateFinder(n, WithSeed(seed)) },
			feed: func(s Sketch) {
				d := s.(*DuplicateFinder)
				for i := 0; i < n; i++ {
					d.Observe(i % (n - 3)) // letters repeat near the end
				}
				d.Observe(7)
			},
			query: func(s Sketch) any {
				l, ok := s.(*DuplicateFinder).Find()
				return [2]any{l, ok}
			},
		},
		{
			name:  "HeavyHitters",
			build: func(seed uint64) Sketch { return NewHeavyHitters(1, 0.2, n, WithSeed(seed)) },
			feed: func(s Sketch) {
				feedTurnstile(s, 6, n, 300)
				h := s.(*HeavyHitters)
				h.Update(11, 50_000)
				h.Update(42, 30_000)
			},
			query: func(s Sketch) any {
				rep := s.(*HeavyHitters).Report()
				out := make([]int, len(rep))
				copy(out, rep)
				return out
			},
		},
		{
			name:  "TwoPassL0Sampler",
			build: func(seed uint64) Sketch { return NewTwoPassL0Sampler(n, WithSeed(seed)) },
			feed: func(s Sketch) {
				tp := s.(*TwoPassL0Sampler)
				feedTurnstile(tp, 8, n, 300)
				tp.EndPass1()
				feedTurnstile(tp, 8, n, 300) // identical replay, pass 2
			},
			query: func(s Sketch) any {
				i, v, ok := s.(*TwoPassL0Sampler).Sample()
				return [3]any{i, v, ok}
			},
		},
		{
			name:  "FpEstimator",
			build: func(seed uint64) Sketch { return NewFpEstimator(3, n, 8, WithSeed(seed)) },
			feed:  func(s Sketch) { feedTurnstile(s, 9, n, 300) },
			query: func(s Sketch) any {
				est, ok := s.(*FpEstimator).Estimate()
				return [2]any{est, ok}
			},
		},
	}
}

func digestEqual(t *testing.T, a, b any) bool {
	t.Helper()
	switch av := a.(type) {
	case [3]any:
		bv := b.([3]any)
		return av == bv
	case [2]any:
		bv := b.([2]any)
		return av == bv
	case []int:
		bv := b.([]int)
		if len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
		return true
	default:
		t.Fatalf("unhandled digest type %T", a)
		return false
	}
}

// TestRoundTripBehaviorPinned is the acceptance property: for every public
// sketch kind, Marshal → Load yields a sketch whose behavior is identical
// to the never-serialized original under a fixed seed — same query outputs,
// same outputs again after both absorb the same extra updates, and
// Merge(zero replica) is a no-op on the bytes.
func TestRoundTripBehaviorPinned(t *testing.T) {
	for _, tc := range sketchCases() {
		t.Run(tc.name, func(t *testing.T) {
			const seed = 12345
			original := tc.build(seed)
			tc.feed(original)

			data, err := original.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			kept := append([]byte(nil), data...)

			loaded, err := Load(data)
			if err != nil {
				t.Fatal(err)
			}
			if want, got := tc.query(original), tc.query(loaded); !digestEqual(t, want, got) {
				t.Fatalf("loaded sketch answers %v, original answers %v", got, want)
			}

			// Merge with a same-seed zero sketch must not change behavior or
			// bytes (the zero replica's linear state is all zeros).
			zero := tc.build(seed)
			if tc.name == "TwoPassL0Sampler" {
				// Same-pass requirement: bring the zero replica to pass 2 with
				// the same committed level by replaying the same pass-1 data.
				zp := zero.(*TwoPassL0Sampler)
				feedTurnstile(zp, 8, 96, 300)
				zp.EndPass1()
				// Its pass-1 estimator state is nonzero, but its pass-2
				// recoverer is zero; merge changes est fingerprints only,
				// which Sample never reads after EndPass1.
			}
			if err := loaded.Merge(zero); err != nil {
				t.Fatalf("Merge(zero replica): %v", err)
			}
			// Byte-identity of Merge(zero) holds for the plainly linear
			// kinds. TwoPassL0Sampler merges nonzero pass-1 state by
			// construction, and DuplicateFinder's merge re-adds the
			// pigeonhole prefix compensation in float cells ((x+y)-y is
			// mathematically x but not bitwise); both are covered by the
			// behavioral equality checks instead.
			if tc.name != "TwoPassL0Sampler" && tc.name != "DuplicateFinder" {
				reser, err := loaded.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(kept, reser) {
					t.Fatal("Marshal -> Load -> Merge(zero) -> Marshal is not byte-identical")
				}
			}
			if want, got := tc.query(original), tc.query(loaded); !digestEqual(t, want, got) {
				t.Fatalf("after zero-merge, loaded answers %v, original answers %v", got, want)
			}

			// Divergence check: both absorb the same extra updates and must
			// stay in lockstep (proves the restored randomness is live, not
			// just the cached answers).
			if tp, ok := loaded.(*TwoPassL0Sampler); ok {
				_ = tp // two-pass replay protocol covered by the query above
			} else {
				extra := []Update{{Index: 1, Delta: 3}, {Index: 17, Delta: -2}, {Index: 33, Delta: 9}}
				original.ProcessBatch(extra)
				loaded.ProcessBatch(extra)
				if want, got := tc.query(original), tc.query(loaded); !digestEqual(t, want, got) {
					t.Fatalf("after extra updates, loaded answers %v, original answers %v", got, want)
				}
			}
		})
	}
}

// TestUnmarshalBinaryRebuildsInPlace pins the encoding.BinaryUnmarshaler
// path: a zero-value receiver rebuilt from bytes behaves like the original.
func TestUnmarshalBinaryRebuildsInPlace(t *testing.T) {
	orig := NewL0Sampler(128, WithSeed(9))
	for i := 0; i < 40; i++ {
		orig.Update(i*3%128, int64(i+1))
	}
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var re L0Sampler
	if err := re.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	oi, ov, ook := orig.Sample()
	ri, rv, rok := re.Sample()
	if oi != ri || ov != rv || ook != rok {
		t.Fatalf("rebuilt sampler answers (%d,%d,%v), original (%d,%d,%v)", ri, rv, rok, oi, ov, ook)
	}
	// And it must be mergeable with the original's lineage.
	other := NewL0Sampler(128, WithSeed(9))
	other.Update(99, 5)
	if err := re.Merge(other); err != nil {
		t.Fatalf("rebuilt sampler rejects same-seed merge: %v", err)
	}
}

// TestUnmarshalKindMismatch pins the typed error when bytes of one kind hit
// a receiver of another.
func TestUnmarshalKindMismatch(t *testing.T) {
	l0 := NewL0Sampler(64, WithSeed(1))
	data, err := l0.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var lp LpSampler
	if err := lp.UnmarshalBinary(data); !errors.Is(err, codec.ErrBadKind) {
		t.Fatalf("err = %v, want ErrBadKind", err)
	}
}

// TestLoadRejectsCorruptHeaderAndTruncatedPayload is the codec-rejection
// half of the round-trip property, run across every kind.
func TestLoadRejectsCorruptHeaderAndTruncatedPayload(t *testing.T) {
	for _, tc := range sketchCases() {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.build(7)
			tc.feed(s)
			data, err := s.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}

			// Bad magic.
			bad := append([]byte(nil), data...)
			bad[0] ^= 0xFF
			if _, err := Load(bad); !errors.Is(err, codec.ErrBadMagic) {
				t.Fatalf("bad magic: %v, want ErrBadMagic", err)
			}

			// Bad version.
			bad = append([]byte(nil), data...)
			bad[4] ^= 0x7F
			if _, err := Load(bad); !errors.Is(err, codec.ErrBadVersion) {
				t.Fatalf("bad version: %v, want ErrBadVersion", err)
			}

			// Unknown kind: flip the kind field high. The fingerprint does
			// not cover a rescue here — the kind dispatch fails first.
			bad = append([]byte(nil), data...)
			bad[7] = 0xFF
			if _, err := Load(bad); !errors.Is(err, codec.ErrBadKind) {
				t.Fatalf("unknown kind: %v, want ErrBadKind", err)
			}

			// Corrupt config block: any flip between the header and the
			// fingerprint must be caught by the seal.
			bad = append([]byte(nil), data...)
			bad[12] ^= 0x01 // first config word
			if _, err := Load(bad); !errors.Is(err, codec.ErrBadFingerprint) {
				t.Fatalf("corrupt config: %v, want ErrBadFingerprint", err)
			}

			// Truncated payload.
			if _, err := Load(data[:len(data)-5]); !errors.Is(err, codec.ErrTruncated) {
				t.Fatalf("truncated payload: %v, want ErrTruncated", err)
			}

			// Trailing garbage.
			if _, err := Load(append(append([]byte(nil), data...), 0xEE)); !errors.Is(err, codec.ErrTrailingData) {
				t.Fatalf("trailing data: %v, want ErrTrailingData", err)
			}
		})
	}
}

// TestMergeErrorSentinels pins the errors.Is contract of the public Merge
// across nil, foreign-type, cross-config and cross-seed arguments.
func TestMergeErrorSentinels(t *testing.T) {
	base := NewL0Sampler(64, WithSeed(1))

	if err := base.Merge(nil); !errors.Is(err, ErrNilMerge) {
		t.Fatalf("Merge(nil) = %v, want ErrNilMerge", err)
	}
	var typedNil *L0Sampler
	if err := base.Merge(typedNil); !errors.Is(err, ErrNilMerge) {
		t.Fatalf("Merge(typed nil) = %v, want ErrNilMerge", err)
	}
	if err := base.Merge(NewLpSampler(1, 64, WithSeed(1))); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("cross-type merge = %v, want ErrConfigMismatch", err)
	}
	if err := base.Merge(NewL0Sampler(128, WithSeed(1))); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("cross-dimension merge = %v, want ErrConfigMismatch", err)
	}
	if err := base.Merge(NewL0Sampler(64, WithSeed(2))); !errors.Is(err, ErrSeedMismatch) {
		t.Fatalf("cross-seed merge = %v, want ErrSeedMismatch", err)
	}

	lp := NewLpSampler(1, 64, WithSeed(3))
	if err := lp.Merge(NewLpSampler(1, 64, WithSeed(4))); !errors.Is(err, ErrSeedMismatch) {
		t.Fatalf("Lp cross-seed merge = %v, want ErrSeedMismatch", err)
	}
	if err := lp.Merge(NewLpSampler(1.5, 64, WithSeed(3))); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("Lp cross-p merge = %v, want ErrConfigMismatch", err)
	}

	hh := NewHeavyHitters(1, 0.2, 64, WithSeed(5))
	if err := hh.Merge(NewHeavyHitters(1, 0.3, 64, WithSeed(5))); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("HH cross-phi merge = %v, want ErrConfigMismatch", err)
	}
	if err := hh.Merge(NewHeavyHitters(1, 0.2, 64, WithSeed(6))); !errors.Is(err, ErrSeedMismatch) {
		t.Fatalf("HH cross-seed merge = %v, want ErrSeedMismatch", err)
	}

	df := NewDuplicateFinder(64, WithSeed(7))
	if err := df.Merge(NewDuplicateFinder(32, WithSeed(7))); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("DF cross-n merge = %v, want ErrConfigMismatch", err)
	}
	if err := df.Merge(NewDuplicateFinder(64, WithSeed(8))); !errors.Is(err, ErrSeedMismatch) {
		t.Fatalf("DF cross-seed merge = %v, want ErrSeedMismatch", err)
	}

	fp := NewFpEstimator(3, 64, 2, WithSeed(9))
	if err := fp.Merge(NewFpEstimator(3, 64, 3, WithSeed(9))); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("Fp cross-samples merge = %v, want ErrConfigMismatch", err)
	}
	if err := fp.Merge(NewFpEstimator(3, 64, 2, WithSeed(10))); !errors.Is(err, ErrSeedMismatch) {
		t.Fatalf("Fp cross-seed merge = %v, want ErrSeedMismatch", err)
	}

	tp := NewTwoPassL0Sampler(64, WithSeed(11))
	tp2 := NewTwoPassL0Sampler(64, WithSeed(11))
	tp2.EndPass1()
	if err := tp.Merge(tp2); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("two-pass cross-pass merge = %v, want ErrConfigMismatch", err)
	}
	if err := tp.Merge(NewTwoPassL0Sampler(64, WithSeed(12))); !errors.Is(err, ErrSeedMismatch) {
		t.Fatalf("two-pass cross-seed merge = %v, want ErrSeedMismatch", err)
	}
}

// TestUnseededSketchesStillSerialize pins the materialized-seed behavior: a
// sketch built without WithSeed draws a concrete random seed and must
// round-trip through bytes like any other.
func TestUnseededSketchesStillSerialize(t *testing.T) {
	s := NewL0Sampler(64)
	s.Update(5, 3)
	s.Update(20, -1)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	li, lv, lok := loaded.(*L0Sampler).Sample()
	oi, ov, ook := s.Sample()
	if li != oi || lv != ov || lok != ook {
		t.Fatalf("unseeded round-trip answers (%d,%d,%v), original (%d,%d,%v)", li, lv, lok, oi, ov, ook)
	}
	// The loaded sketch is a same-seed replica: merging must work.
	if err := s.Merge(loaded); err != nil {
		t.Fatalf("merge with own round-trip: %v", err)
	}
}

// TestLoadRejectsAbsurdConfig pins the ErrBadConfig guard: a syntactically
// valid encoding (correct magic and fingerprint) whose config would force
// absurd allocations must be rejected, not attempted.
func TestLoadRejectsAbsurdConfig(t *testing.T) {
	e := codec.NewEncoder(codec.KindL0Sampler)
	e.U64(1 << 50) // dimension beyond maxWireDim
	e.F64(0.2)
	e.U64(0)
	e.Bool(false)
	e.U64(1)
	e.SealHeader()
	if _, err := Load(e.Bytes()); !errors.Is(err, codec.ErrBadConfig) {
		t.Fatalf("absurd dimension: %v, want ErrBadConfig", err)
	}

	e = codec.NewEncoder(codec.KindHeavyHitters)
	e.U64(64)
	e.F64(2)    // p = 2
	e.F64(1e-9) // phi forcing m ~ 10^19
	e.U64(1)
	e.SealHeader()
	if _, err := Load(e.Bytes()); !errors.Is(err, codec.ErrBadConfig) {
		t.Fatalf("absurd phi: %v, want ErrBadConfig", err)
	}

	// p arbitrarily close to 1 blows up the scaling-factor independence
	// k = 10·⌈1/|p-1|⌉ even though every per-field bound looks tame.
	e = codec.NewEncoder(codec.KindLpSampler)
	e.U64(4)
	e.F64(1 + 1e-12)
	e.F64(0.5)
	e.F64(0.5)
	e.U64(1)
	e.U64(1)
	e.SealHeader()
	if _, err := Load(e.Bytes()); !errors.Is(err, codec.ErrBadConfig) {
		t.Fatalf("absurd k: %v, want ErrBadConfig", err)
	}

	// Repetitions × rows × cells product beyond the word budget, with each
	// factor individually under its own cap.
	e = codec.NewEncoder(codec.KindLpSampler)
	e.U64(1 << 30)
	e.F64(0.5)
	e.F64(1e-4) // m ≈ 16·ε^{-... } fine for p<1, but copies cap is the guard
	e.F64(0.5)
	e.U64(1 << 19) // copies: under maxWireKnob, product far over budget
	e.U64(1)
	e.SealHeader()
	if _, err := Load(e.Bytes()); !errors.Is(err, codec.ErrBadConfig) {
		t.Fatalf("absurd copies×rows×m: %v, want ErrBadConfig", err)
	}

	// HeavyHitters with per-field-plausible phi whose rows × 6m cells blow
	// the uniform word budget.
	e = codec.NewEncoder(codec.KindHeavyHitters)
	e.U64(1<<31 - 1)
	e.F64(2)
	e.F64(0.0017) // m ≈ 4.2M: cells ≈ 880M words
	e.U64(1)
	e.SealHeader()
	if _, err := Load(e.Bytes()); !errors.Is(err, codec.ErrBadConfig) {
		t.Fatalf("absurd HH cells: %v, want ErrBadConfig", err)
	}

	// L0 with a sparsity override beyond the knob cap (within the cap, the
	// worst case — 31 levels × 2·maxWireKnob syndromes — stays under the
	// word budget, so the knob cap is the binding guard for this kind).
	e = codec.NewEncoder(codec.KindL0Sampler)
	e.U64(1 << 20)
	e.F64(0.2)
	e.U64(1 << 24) // sBudget far over maxWireKnob
	e.Bool(false)
	e.U64(1)
	e.SealHeader()
	if _, err := Load(e.Bytes()); !errors.Is(err, codec.ErrBadConfig) {
		t.Fatalf("absurd L0 sparsity: %v, want ErrBadConfig", err)
	}
}

// TestRoundTripLargeLegitConfig pins that the hostile-bytes word budget
// does not reject realistically large constructible sketches.
func TestRoundTripLargeLegitConfig(t *testing.T) {
	s := NewLpSampler(1.5, 1<<20, WithSeed(8), WithEps(0.05), WithDelta(0.1))
	s.Update(3, 17)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(data); err != nil {
		t.Fatalf("large legit config rejected: %v", err)
	}
}

// TestLoadRejectsCorruptTwoPassMarker pins the payload-level guard: the
// pass marker is not covered by the header fingerprint, so a corrupted
// marker must fail the decode instead of restoring inconsistent state.
func TestLoadRejectsCorruptTwoPassMarker(t *testing.T) {
	tp := NewTwoPassL0Sampler(64, WithSeed(3))
	tp.Update(5, 2)
	data, err := tp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Layout: 8 header + 3 config words + 8 fingerprint, then the pass
	// marker as the first payload word.
	const passOff = 8 + 3*8 + 8
	bad := append([]byte(nil), data...)
	bad[passOff] = 0xFF
	if _, err := Load(bad); !errors.Is(err, codec.ErrBadConfig) {
		t.Fatalf("corrupt pass marker: %v, want ErrBadConfig", err)
	}
}
