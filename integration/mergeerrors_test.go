package integration

import (
	"errors"
	"math/rand/v2"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/countmin"
	"repro/internal/countsketch"
	"repro/internal/distinct"
	"repro/internal/duplicates"
	"repro/internal/heavyhitters"
	"repro/internal/moments"
	"repro/internal/norm"
	"repro/internal/sparse"
)

// TestInternalMergeSentinels pins the errors.Is contract of every internal
// substrate's Merge: nil arguments wrap codec.ErrNilMerge, shape/parameter
// mismatches wrap codec.ErrConfigMismatch, and same-shape replicas from
// different randomness wrap codec.ErrSeedMismatch.
func TestInternalMergeSentinels(t *testing.T) {
	rng := func(s uint64) *rand.Rand { return rand.New(rand.NewPCG(s, s^0xABCD)) }

	check := func(name string, err error, want error) {
		t.Helper()
		if !errors.Is(err, want) {
			t.Errorf("%s: err = %v, want %v", name, err, want)
		}
	}

	// countsketch
	cs := countsketch.New(8, 3, rng(1))
	check("countsketch nil", cs.Merge(nil), codec.ErrNilMerge)
	check("countsketch shape", cs.Merge(countsketch.New(16, 3, rng(1))), codec.ErrConfigMismatch)
	check("countsketch seed", cs.Merge(countsketch.New(8, 3, rng(2))), codec.ErrSeedMismatch)

	// countmin
	cm := countmin.New(64, 4, rng(3))
	check("countmin nil", cm.Merge(nil), codec.ErrNilMerge)
	check("countmin shape", cm.Merge(countmin.New(32, 4, rng(3))), codec.ErrConfigMismatch)
	check("countmin seed", cm.Merge(countmin.New(64, 4, rng(4))), codec.ErrSeedMismatch)

	// norm: AMS and Stable, including the cross-type case
	ams := norm.NewAMS(5, 4, rng(5))
	check("ams nil", ams.Merge(nil), codec.ErrNilMerge)
	check("ams shape", ams.Merge(norm.NewAMS(7, 4, rng(5))), codec.ErrConfigMismatch)
	check("ams seed", ams.Merge(norm.NewAMS(5, 4, rng(6))), codec.ErrSeedMismatch)
	st := norm.NewStable(1, 20, rng(7))
	check("stable cross-type", st.Merge(ams), codec.ErrConfigMismatch)
	check("ams cross-type", ams.Merge(st), codec.ErrConfigMismatch)
	check("stable shape", st.Merge(norm.NewStable(1.5, 20, rng(7))), codec.ErrConfigMismatch)
	check("stable seed", st.Merge(norm.NewStable(1, 20, rng(8))), codec.ErrSeedMismatch)

	// distinct
	de := distinct.New(128, 4, rng(9))
	check("distinct nil", de.Merge(nil), codec.ErrNilMerge)
	check("distinct shape", de.Merge(distinct.New(64, 4, rng(9))), codec.ErrConfigMismatch)
	check("distinct seed", de.Merge(distinct.New(128, 4, rng(10))), codec.ErrSeedMismatch)

	// sparse
	sp := sparse.New(128, 4, rng(11))
	check("sparse nil", sp.Merge(nil), codec.ErrNilMerge)
	check("sparse shape", sp.Merge(sparse.New(128, 8, rng(11))), codec.ErrConfigMismatch)
	check("sparse seed", sp.Merge(sparse.New(128, 4, rng(12))), codec.ErrSeedMismatch)

	// core L0
	l0 := core.NewL0Sampler(core.L0Config{N: 128, Delta: 0.2}, rng(13))
	check("l0 nil", l0.Merge(nil), codec.ErrNilMerge)
	check("l0 shape", l0.Merge(core.NewL0Sampler(core.L0Config{N: 64, Delta: 0.2}, rng(13))), codec.ErrConfigMismatch)
	check("l0 seed", l0.Merge(core.NewL0Sampler(core.L0Config{N: 128, Delta: 0.2}, rng(14))), codec.ErrSeedMismatch)

	// core Lp
	lpCfg := core.LpConfig{P: 1, N: 128, Eps: 0.25, Delta: 0.2}
	lp := core.NewLpSampler(lpCfg, rng(15))
	check("lp nil", lp.Merge(nil), codec.ErrNilMerge)
	otherCfg := lpCfg
	otherCfg.N = 64
	check("lp shape", lp.Merge(core.NewLpSampler(otherCfg, rng(15))), codec.ErrConfigMismatch)
	check("lp seed", lp.Merge(core.NewLpSampler(lpCfg, rng(16))), codec.ErrSeedMismatch)

	// core two-pass
	tp := core.NewTwoPassL0Sampler(128, 0.2, rng(17))
	check("twopass nil", tp.Merge(nil), codec.ErrNilMerge)
	tp2 := core.NewTwoPassL0Sampler(128, 0.2, rng(17))
	tp2.EndPass1()
	check("twopass pass", tp.Merge(tp2), codec.ErrConfigMismatch)
	check("twopass seed", tp.Merge(core.NewTwoPassL0Sampler(128, 0.2, rng(18))), codec.ErrSeedMismatch)

	// duplicates
	fi := duplicates.NewFinder(64, 0.2, rng(19))
	check("finder nil", fi.Merge(nil), codec.ErrNilMerge)
	check("finder shape", fi.Merge(duplicates.NewFinder(32, 0.2, rng(19))), codec.ErrConfigMismatch)
	check("finder seed", fi.Merge(duplicates.NewFinder(64, 0.2, rng(20))), codec.ErrSeedMismatch)
	sf := duplicates.NewShortFinder(64, 4, 0.2, rng(21))
	check("shortfinder nil", sf.Merge(nil), codec.ErrNilMerge)
	check("shortfinder shape", sf.Merge(duplicates.NewShortFinder(64, 8, 0.2, rng(21))), codec.ErrConfigMismatch)
	check("shortfinder seed", sf.Merge(duplicates.NewShortFinder(64, 4, 0.2, rng(22))), codec.ErrSeedMismatch)

	// heavyhitters
	hh := heavyhitters.New(heavyhitters.Config{P: 1, Phi: 0.2, N: 64}, rng(23))
	check("hh nil", hh.Merge(nil), codec.ErrNilMerge)
	check("hh shape", hh.Merge(heavyhitters.New(heavyhitters.Config{P: 1, Phi: 0.3, N: 64}, rng(23))), codec.ErrConfigMismatch)
	check("hh seed", hh.Merge(heavyhitters.New(heavyhitters.Config{P: 1, Phi: 0.2, N: 64}, rng(24))), codec.ErrSeedMismatch)

	// moments
	fp := moments.NewFp(3, 64, 2, rng(25))
	check("fp nil", fp.Merge(nil), codec.ErrNilMerge)
	check("fp shape", fp.Merge(moments.NewFp(3, 64, 3, rng(25))), codec.ErrConfigMismatch)
	check("fp seed", fp.Merge(moments.NewFp(3, 64, 2, rng(26))), codec.ErrSeedMismatch)
}
