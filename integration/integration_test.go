// Package integration exercises cross-module compositions end to end: the
// public API over the full workload matrix, sketch linearity across
// serialization boundaries, samplers against exact ground truth, and the
// applications against their oracles. Everything here goes through at least
// two internal subsystems; single-module behaviour is covered next to each
// package.
package integration

import (
	"math"
	"math/rand/v2"
	"testing"

	streamsample "repro"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/distinct"
	"repro/internal/duplicates"
	"repro/internal/heavyhitters"
	"repro/internal/moments"
	"repro/internal/stream"
)

// workloadMatrix enumerates the stream shapes every sampler must survive.
func workloadMatrix(n int, r *rand.Rand) map[string]stream.Stream {
	return map[string]stream.Stream{
		"turnstile":  stream.RandomTurnstile(n, 4*n, 50, r),
		"zipf":       stream.ZipfSigned(n, 1.0, 10000, r),
		"sparse":     stream.SparseVector(n, n/16, 100, r),
		"plusminus1": stream.ZeroPlusMinusOne(n, n/4, n/4, r),
		"strict":     stream.StrictTurnstile(n, 4*n, 20, r),
	}
}

func TestLpSamplerAcrossWorkloadMatrix(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	const n = 256
	for name, st := range workloadMatrix(n, r) {
		name, st := name, st
		t.Run(name, func(t *testing.T) {
			truth := st.Apply(n)
			if truth.L0() == 0 {
				t.Skip("workload cancelled to zero")
			}
			produced, badIndex := 0, 0
			for trial := 0; trial < 10; trial++ {
				s := core.NewLpSampler(core.LpConfig{P: 1, N: n, Eps: 0.3, Delta: 0.2}, r)
				st.Feed(s)
				out, ok := s.Sample()
				if !ok {
					continue
				}
				produced++
				if truth.Get(out.Index) == 0 {
					badIndex++
				}
			}
			if produced < 5 {
				t.Errorf("only %d/10 trials produced output", produced)
			}
			if badIndex > 1 {
				t.Errorf("%d/%d samples landed on zero coordinates", badIndex, produced)
			}
		})
	}
}

func TestL0SamplerAcrossWorkloadMatrix(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 2))
	const n = 256
	for name, st := range workloadMatrix(n, r) {
		name, st := name, st
		t.Run(name, func(t *testing.T) {
			truth := st.Apply(n)
			if truth.L0() == 0 {
				t.Skip("workload cancelled to zero")
			}
			for trial := 0; trial < 5; trial++ {
				s := core.NewL0Sampler(core.L0Config{N: n, Delta: 0.2}, r)
				st.Feed(s)
				out, ok := s.Sample()
				if !ok {
					continue
				}
				if got := truth.Get(out.Index); got == 0 || float64(got) != out.Estimate {
					t.Fatalf("trial %d: sample (%d,%v) vs truth %d", trial, out.Index, out.Estimate, got)
				}
			}
		})
	}
}

func TestSamplerAgreesWithDistinctEstimator(t *testing.T) {
	// Two independent subsystems, one ground truth: the rough L0 estimate
	// and repeated L0 samples must tell a consistent story about support.
	r := rand.New(rand.NewPCG(3, 3))
	const n = 512
	st := stream.SparseVector(n, 40, 100, r)
	truth := st.Apply(n)

	est := distinct.New(n, 12, r)
	st.Feed(est)
	l0hat := est.Estimate()
	if l0hat < int64(truth.L0())/8 || l0hat > int64(truth.L0())*32 {
		t.Fatalf("estimator says %d, truth %d", l0hat, truth.L0())
	}
	seen := map[int]bool{}
	for trial := 0; trial < 30; trial++ {
		s := core.NewL0Sampler(core.L0Config{N: n, Delta: 0.2}, r)
		st.Feed(s)
		if out, ok := s.Sample(); ok {
			seen[out.Index] = true
		}
	}
	// Repeated sampling must touch a decent chunk of the support and never
	// leave it.
	for i := range seen {
		if truth.Get(i) == 0 {
			t.Fatalf("sampled outside the support: %d", i)
		}
	}
	if len(seen) < 10 {
		t.Errorf("30 samples touched only %d distinct support elements", len(seen))
	}
}

func TestDuplicatesAgainstBitmapOracle(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 4))
	const n = 512
	agree, produced := 0, 0
	for trial := 0; trial < 20; trial++ {
		items := stream.DuplicateItems(n, -1, r)
		oracle := baseline.NewBitmap(n)
		fd := duplicates.NewFinder(n, 0.1, r)
		for _, it := range items {
			oracle.ProcessItem(it)
			fd.ProcessItem(it)
		}
		if _, ok := oracle.Duplicate(); !ok {
			t.Fatal("oracle found no duplicate in a pigeonhole stream")
		}
		res := fd.Find()
		if res.Kind != duplicates.Duplicate {
			continue
		}
		produced++
		count := 0
		for _, it := range items {
			if it == res.Index {
				count++
			}
		}
		if count >= 2 {
			agree++
		}
	}
	if produced < 14 {
		t.Fatalf("finder produced output only %d/20 times", produced)
	}
	if agree != produced {
		t.Errorf("finder disagreed with ground truth %d times", produced-agree)
	}
}

func TestHeavyHittersConsistentWithLpSampler(t *testing.T) {
	// A φ-heavy coordinate must both appear in the heavy-hitter set and
	// dominate Lp samples.
	r := rand.New(rand.NewPCG(5, 5))
	const n = 256
	var st stream.Stream
	for i := 0; i < n; i++ {
		st = append(st, stream.Update{Index: i, Delta: 2})
	}
	st = append(st, stream.Update{Index: 42, Delta: 10000})

	hh := heavyhitters.New(heavyhitters.Config{P: 1, Phi: 0.3, N: n}, r)
	st.Feed(hh)
	inSet := false
	for _, i := range hh.HeavyHitters() {
		if i == 42 {
			inSet = true
		}
	}
	if !inSet {
		t.Fatal("heavy hitter set misses the dominant coordinate")
	}
	hits, produced := 0, 0
	for trial := 0; trial < 10; trial++ {
		s := core.NewLpSampler(core.LpConfig{P: 1, N: n, Eps: 0.3, Delta: 0.2}, r)
		st.Feed(s)
		if out, ok := s.Sample(); ok {
			produced++
			if out.Index == 42 {
				hits++
			}
		}
	}
	if produced < 5 || hits < produced*7/10 {
		t.Errorf("sampler hit the heavy coordinate %d/%d times", hits, produced)
	}
}

func TestPublicAPIMergePartition(t *testing.T) {
	// Merging sketches of a partition must equal the sketch of the whole —
	// over the public API, with three parts.
	const n = 300
	whole := streamsample.NewL0Sampler(n, streamsample.WithSeed(99))
	parts := make([]*streamsample.L0Sampler, 3)
	for i := range parts {
		parts[i] = streamsample.NewL0Sampler(n, streamsample.WithSeed(99))
	}
	r := rand.New(rand.NewPCG(6, 6))
	for i := 0; i < n; i++ {
		d := r.Int64N(41) - 20
		if d == 0 {
			d = 1
		}
		whole.Update(i, d)
		parts[i%3].Update(i, d)
	}
	if err := parts[0].Merge(parts[1]); err != nil {
		t.Fatalf("same-seed merge failed: %v", err)
	}
	if err := parts[0].Merge(parts[2]); err != nil {
		t.Fatalf("same-seed merge failed: %v", err)
	}
	wi, wv, wok := whole.Sample()
	pi, pv, pok := parts[0].Sample()
	if wok != pok || wi != pi || wv != pv {
		t.Fatalf("merged partition (%d,%d,%v) != whole (%d,%d,%v)", pi, pv, pok, wi, wv, wok)
	}
}

func TestTwoPassMatchesOnePassSupport(t *testing.T) {
	// One-pass and two-pass L0 samplers on the same stream must both land
	// in the support with exact values.
	r := rand.New(rand.NewPCG(7, 7))
	const n = 512
	st := stream.SparseVector(n, 60, 50, r)
	truth := st.Apply(n)
	for trial := 0; trial < 10; trial++ {
		one := core.NewL0Sampler(core.L0Config{N: n, Delta: 0.2}, r)
		st.Feed(one)
		two := core.NewTwoPassL0Sampler(n, 0.2, r)
		st.Feed(two)
		two.EndPass1()
		st.Feed(two)
		for name, res := range map[string]func() (core.Sample, bool){
			"one-pass": one.Sample,
			"two-pass": two.Sample,
		} {
			out, ok := res()
			if !ok {
				continue
			}
			if got := truth.Get(out.Index); got == 0 || float64(got) != out.Estimate {
				t.Fatalf("%s: sample (%d,%v) vs truth %d", name, out.Index, out.Estimate, got)
			}
		}
	}
}

func TestMomentsUsesSamplerEstimates(t *testing.T) {
	// moments -> core -> countsketch/norm, with ground truth from vector.
	r := rand.New(rand.NewPCG(8, 8))
	const n = 128
	st := stream.ZipfSigned(n, 1.3, 500, r)
	truthVec := st.Apply(n)
	var truth float64
	for _, v := range truthVec.Coords() {
		truth += math.Pow(math.Abs(float64(v)), 3)
	}
	e := moments.NewFp(3, n, 16, r)
	st.Feed(e)
	got, ok := e.Estimate()
	if !ok {
		t.Fatal("moments estimator failed")
	}
	if got < truth/5 || got > truth*5 {
		t.Errorf("F3 = %.3g, truth %.3g (want within 5x)", got, truth)
	}
}
