package integration

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"

	streamsample "repro"
	"repro/internal/checkpoint"
	"repro/internal/sketchd"
	"repro/internal/stream"
)

// buildBinary compiles one cmd/ package into dir and returns the binary
// path.
func buildBinary(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	build := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	build.Dir = ".."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/%s: %v\n%s", name, err, out)
	}
	return bin
}

// startSketchd launches the real sketchd binary on a kernel-picked loopback
// port and returns its base URL plus the running process. The first stdout
// line carries the bound address by contract.
func startSketchd(t *testing.T, bin string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting sketchd: %v", err)
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill() //nolint:errcheck // startup failed
		t.Fatal("sketchd produced no startup line")
	}
	line := sc.Text()
	const prefix = "sketchd: listening on "
	if !strings.HasPrefix(line, prefix) {
		cmd.Process.Kill() //nolint:errcheck // startup failed
		t.Fatalf("unexpected startup line %q", line)
	}
	go io.Copy(io.Discard, stdout) //nolint:errcheck // drain so the child never blocks on a full pipe
	return "http://" + strings.TrimPrefix(line, prefix), cmd
}

func stopProcess(cmd *exec.Cmd) {
	if cmd.Process != nil {
		cmd.Process.Kill() //nolint:errcheck // teardown
		cmd.Wait()         //nolint:errcheck // teardown
	}
}

// TestSketchdLoadAgreement is the acceptance run: the real sketchd binary
// takes 10k+ simulated concurrent exporters through the real sketchload
// binary, and the merged sketch must agree with serial single-process
// ingestion — byte-identical state and equal samples (sketchload -verify
// enforces both; exact, because the kinds are linear).
func TestSketchdLoadAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary exec test in -short mode")
	}
	dir := t.TempDir()
	sketchdBin := buildBinary(t, dir, "sketchd")
	loadBin := buildBinary(t, dir, "sketchload")

	// The fan-in is set low relative to the upload-seal cadence so the
	// hierarchical path genuinely engages: leaves fill, detach, and fold
	// into the root (asserted below), instead of every upload being flushed
	// straight through by an early seal.
	addr, server := startSketchd(t, sketchdBin, "-data", filepath.Join(dir, "state"),
		"-fanin", "8", "-upload-checkpoint-every", "4096")
	defer stopProcess(server)

	exporters := "10000"
	length := "200000"
	if os.Getenv("SERVE_E2E_SMOKE") != "" {
		exporters, length = "500", "50000" // CI smoke leg: same path, lighter load
	}
	for _, mode := range []string{"sketch", "raw"} {
		ex := exporters
		if mode == "raw" {
			ex = "1000" // raw mode ships frames, not folded sketches; fewer exporters, same updates
		}
		load := exec.Command(loadBin,
			"-addr", addr, "-mode", mode, "-exporters", ex, "-concurrency", "128",
			"-n", "1024", "-len", length, "-seed", "7", "-verify",
			"-tenant", "load", "-name", "agree-"+mode)
		out, err := load.CombinedOutput()
		if err != nil {
			t.Fatalf("sketchload -mode %s: %v\n%s", mode, err, out)
		}
		if !strings.Contains(string(out), "verify OK") {
			t.Fatalf("sketchload -mode %s did not verify:\n%s", mode, out)
		}
		if mode == "sketch" {
			m := regexp.MustCompile(`leaf_folds=(\d+)`).FindStringSubmatch(string(out))
			if m == nil || m[1] == "0" {
				t.Fatalf("sketch mode did not exercise the hierarchical merge tree:\n%s", out)
			}
		}
		t.Logf("mode %s:\n%s", mode, out)
	}
}

// TestSketchdKillRestartDurability is the crash acceptance run: SIGKILL the
// server binary during sustained raw ingest, then prove no silent loss —
// the restarted server's merged sketch must be byte-identical to what the
// checkpoint store's last sealed generation plus journal tail reconstruct
// offline.
func TestSketchdKillRestartDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary exec test in -short mode")
	}
	dir := t.TempDir()
	sketchdBin := buildBinary(t, dir, "sketchd")
	dataDir := filepath.Join(dir, "state")

	addr, server := startSketchd(t, sketchdBin, "-data", dataDir, "-checkpoint-every", "512", "-shards", "2")
	defer stopProcess(server)

	const n, seed = 2048, 13
	ctx := context.Background()
	client := sketchd.NewClient(addr)
	if err := client.Create(ctx, "t", "s", sketchd.Spec{Kind: "l0", N: n, Seed: seed}); err != nil {
		t.Fatalf("create: %v", err)
	}

	// Sustained ingest: many small pushes so the kill lands between ACKs
	// with journal appends and periodic generation seals both in flight.
	// The batch size (170) does not divide the checkpoint interval, so the
	// final state provably straddles a generation: the kill leaves a
	// non-empty journal tail and the replay path is genuinely exercised.
	st := stream.RandomTurnstile(n, 60000, 100, rand.New(rand.NewPCG(seed, seed^0xD1B54A32D192ED03)))
	acked := 0
	for i := 0; i < len(st); i += 170 {
		hi := min(i+170, len(st))
		if _, err := client.PushUpdates(ctx, "t", "s", st[i:hi]); err != nil {
			t.Fatalf("push at %d: %v", i, err)
		}
		acked = hi
		if acked >= 30000 {
			break
		}
	}

	// SIGKILL mid-stream: no drain, no flush, no goodbye.
	if err := server.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	server.Wait() //nolint:errcheck // the kill IS the expected exit

	// Offline truth: what the store's last good generation + journal tail
	// reconstruct, read from a copy so this cannot disturb the real
	// recovery below.
	engineDir := filepath.Join(dataDir, "tenants", "t", "s", "engine")
	copyDir := filepath.Join(dir, "engine-copy")
	copyTree(t, engineDir, copyDir)
	store, err := checkpoint.Open(copyDir, checkpoint.Options{})
	if err != nil {
		t.Fatalf("opening store copy: %v", err)
	}
	rec, err := store.Latest()
	if err != nil {
		t.Fatalf("recovering store copy: %v", err)
	}
	expected := streamsample.NewL0Sampler(n, streamsample.WithSeed(seed))
	for _, blob := range rec.States {
		s, err := streamsample.Load(blob)
		if err != nil {
			t.Fatalf("loading generation blob: %v", err)
		}
		if err := expected.Merge(s); err != nil {
			t.Fatalf("folding generation blob: %v", err)
		}
	}
	tailUpdates := 0
	for _, b := range rec.Tail {
		expected.ProcessBatch(b)
		tailUpdates += len(b)
	}
	store.Close() //nolint:errcheck // read-only use of a throwaway copy
	want, err := expected.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("killed after %d acked updates; store holds generation %d + %d journal-tail updates (torn=%v)",
		acked, rec.Generation, tailUpdates, rec.Torn)
	if tailUpdates == 0 {
		t.Fatal("kill landed on a checkpoint boundary; the journal-replay path was not exercised")
	}

	// Restart on the same directory: recovery must serve exactly that state.
	addr2, server2 := startSketchd(t, sketchdBin, "-data", dataDir, "-checkpoint-every", "512", "-shards", "2")
	defer stopProcess(server2)
	client2 := sketchd.NewClient(addr2)
	got, err := client2.Bytes(ctx, "t", "s")
	if err != nil {
		t.Fatalf("recovered bytes: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered sketch differs from last sealed generation + journal tail (%d vs %d bytes)",
			len(got), len(want))
	}
	// The write-ahead journal means every ACKed update survived the SIGKILL.
	serial := streamsample.NewL0Sampler(n, streamsample.WithSeed(seed))
	serial.ProcessBatch(st[:acked])
	wantAcked, err := serial.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantAcked) {
		t.Fatalf("recovered sketch lost ACKed updates (journal under-replayed)")
	}
}

// TestWorkloadPushBinary drives cmd/workload's -push mode against a real
// sketchd: three exporters over disjoint shards push to one sketch, a
// single-process exporter pushes the whole stream to another, and the two
// merged sketches must be byte-identical on the server.
func TestWorkloadPushBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary exec test in -short mode")
	}
	dir := t.TempDir()
	sketchdBin := buildBinary(t, dir, "sketchd")
	workloadBin := buildBinary(t, dir, "workload")

	addr, server := startSketchd(t, sketchdBin)
	defer stopProcess(server)

	common := []string{"-len", "30000", "-n", "1024", "-seed", "5", "-sketch", "l0", "-push", addr, "-tenant", "acme"}
	run := func(args ...string) {
		t.Helper()
		cmd := exec.Command(workloadBin, append(append([]string{}, common...), args...)...)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("workload %v: %v\n%s", args, err, out)
		}
	}
	for i := 0; i < 3; i++ {
		run("-name", "sharded", "-shard", fmt.Sprintf("%d/3", i))
	}
	run("-name", "single", "-shard", "0/1")

	ctx := context.Background()
	client := sketchd.NewClient(addr)
	sharded, err := client.Bytes(ctx, "acme", "sharded")
	if err != nil {
		t.Fatal(err)
	}
	single, err := client.Bytes(ctx, "acme", "single")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sharded, single) {
		t.Fatal("three pushed shards do not merge to the single-process push")
	}
	if len(sharded) < 64 {
		t.Fatalf("merged sketch suspiciously small: %d bytes", len(sharded))
	}

	// The tier is also reachable by bare HTTP — a curl-shaped v1 client
	// with no negotiation header gets the negotiated default.
	resp, err := http.Get(addr + "/v1/tenants/acme/sketches/sharded/sample")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("bare GET sample: %d\n%s", resp.StatusCode, body)
	}
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copying %s: %v", src, err)
	}
}
