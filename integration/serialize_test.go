package integration

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	streamsample "repro"
	"repro/internal/stream"
)

// shardStream slices st into cnt disjoint position-interleaved shards — the
// partition cmd/workload's -shard i/N flag uses.
func shardStream(st stream.Stream, cnt int) []stream.Stream {
	shards := make([]stream.Stream, cnt)
	for j, u := range st {
		shards[j%cnt] = append(shards[j%cnt], u)
	}
	return shards
}

// TestShardedExportMergeMatchesSingleProcess is the acceptance test of the
// distributed pattern: N same-seed sketches each ingest a disjoint shard,
// travel as bytes, are Loaded and merged — and the merged sample
// distribution matches single-process ingestion. Linearity makes the match
// exact per seed (the merged linear state equals the single-process state),
// and across seeds the merged samples must stay uniform over the support
// (chi-square tolerance).
func TestShardedExportMergeMatchesSingleProcess(t *testing.T) {
	const n, shards, trials = 64, 3, 400
	st := stream.SparseVector(n, 16, 100, rand.New(rand.NewPCG(77, 78)))
	truth := st.Apply(n)
	support := map[int]int64{}
	for i := 0; i < n; i++ {
		if v := truth.Get(i); v != 0 {
			support[i] = v
		}
	}
	if len(support) != 16 {
		t.Fatalf("workload has support %d, want 16", len(support))
	}
	parts := shardStream(st, shards)

	counts := map[int]int{}
	produced := 0
	for trial := 0; trial < trials; trial++ {
		seed := uint64(1000 + trial)

		single := streamsample.NewL0Sampler(n, streamsample.WithSeed(seed))
		single.ProcessBatch(st)
		sIdx, sVal, sOK := single.Sample()

		// Each "process" ingests its shard and emits bytes; the "merger"
		// loads the bytes and folds them together.
		var merged streamsample.Sketch
		for _, part := range parts {
			sk := streamsample.NewL0Sampler(n, streamsample.WithSeed(seed))
			sk.ProcessBatch(part)
			data, err := sk.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			loaded, err := streamsample.Load(data)
			if err != nil {
				t.Fatal(err)
			}
			if merged == nil {
				merged = loaded
				continue
			}
			if err := merged.Merge(loaded); err != nil {
				t.Fatal(err)
			}
		}
		mIdx, mVal, mOK := merged.(*streamsample.L0Sampler).Sample()

		// Linearity: the merged-from-bytes sketch answers exactly like the
		// single-process one, seed for seed.
		if sOK != mOK || sIdx != mIdx || sVal != mVal {
			t.Fatalf("trial %d: single (%d,%d,%v) vs merged (%d,%d,%v)",
				trial, sIdx, sVal, sOK, mIdx, mVal, mOK)
		}
		if !mOK {
			continue
		}
		produced++
		if want, ok := support[mIdx]; !ok || want != mVal {
			t.Fatalf("trial %d: sampled (%d,%d) not in true support %v", trial, mIdx, mVal, support)
		}
		counts[mIdx]++
	}
	if produced < trials*8/10 {
		t.Fatalf("only %d/%d trials produced a sample", produced, trials)
	}

	// Chi-square of the merged sample distribution against uniform over the
	// support: df = 15; 50 is far beyond the p=1e-4 critical value (~42).
	expected := float64(produced) / float64(len(support))
	var chi2 float64
	for i := range support {
		diff := float64(counts[i]) - expected
		chi2 += diff * diff / expected
	}
	if chi2 > 50 {
		t.Fatalf("merged sample distribution chi2 = %.1f over %d trials (counts %v)", chi2, produced, counts)
	}
}

// TestCrossSeedShardRejected pins the wire-level guarantee that shards from
// different seeds cannot be silently merged.
func TestCrossSeedShardRejected(t *testing.T) {
	const n = 64
	a := streamsample.NewL0Sampler(n, streamsample.WithSeed(1))
	b := streamsample.NewL0Sampler(n, streamsample.WithSeed(2))
	a.Update(3, 1)
	b.Update(4, 1)
	ab, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	la, err := streamsample.Load(ab)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := streamsample.Load(bb)
	if err != nil {
		t.Fatal(err)
	}
	if err := la.Merge(lb); err == nil {
		t.Fatal("cross-seed merge of loaded sketches must fail")
	}
}

// TestWorkloadExportImportBinary drives the real cmd/workload binary through
// the documented distributed flow: three exporter runs over disjoint shards,
// one importer run merging their files — and checks the merged sample equals
// the single-process export+import of the same stream.
func TestWorkloadExportImportBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary exec test in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "workload")
	build := exec.Command("go", "build", "-o", bin, "./cmd/workload")
	build.Dir = ".."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	run := func(args ...string) string {
		cmd := exec.Command(bin, args...)
		cmd.Dir = dir
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("workload %v: %v\n%s", args, err, stderr.String())
		}
		return stdout.String()
	}

	common := []string{"-len", "30000", "-n", "1024", "-seed", "5", "-sketch", "l0"}
	files := make([]string, 3)
	for i := range files {
		files[i] = filepath.Join(dir, fmt.Sprintf("s%d.bin", i))
		run(append(append([]string{}, common...),
			"-shard", fmt.Sprintf("%d/3", i), "-export", files[i])...)
	}
	single := filepath.Join(dir, "all.bin")
	run(append(append([]string{}, common...), "-shard", "0/1", "-export", single)...)

	mergedOut := run("-import", files[0]+","+files[1]+","+files[2])
	singleOut := run("-import", single)
	if mergedOut != singleOut {
		t.Fatalf("sharded merge output %q differs from single-process output %q", mergedOut, singleOut)
	}
	if len(mergedOut) == 0 {
		t.Fatal("importer produced no output")
	}
	// The shard files must actually exist and be nontrivial sketches.
	for _, f := range files {
		st, err := os.Stat(f)
		if err != nil || st.Size() < 64 {
			t.Fatalf("shard file %s missing or trivial: %v", f, err)
		}
	}
}
