package streamsample

import (
	"fmt"
	"math"

	"repro/internal/codec"
	"repro/internal/duplicates"
)

// This file implements the wire format of the public sketches: for each
// kind, MarshalBinary writes the codec header, the kind-specific config
// block (dimension, parameters, construction seed), the sealing
// fingerprint, and the sketch's linear state; Load and UnmarshalBinary
// reverse it by reconstructing a same-seed instance from the config block
// and overwriting its linear state with the payload. See internal/codec for
// the byte-level layout and the error taxonomy.

// Sanity bounds on decoded config blocks. The header fingerprint already
// rejects accidental corruption; these bounds additionally keep Load from
// attempting absurd allocations when handed deliberately crafted bytes
// (the fingerprint is a plain hash — anyone can seal a hostile header).
// Every kind is held to the same rule: the decode predicts the sketch's
// derived state size by mirroring the constructor's sizing arithmetic, and
// rejects configs beyond maxWireWords (~1 GiB of 64-bit words) — a sketch
// that large is a hostile or nonsensical wire config, not a summary.
const (
	maxWireDim   = 1<<31 - 1 // vector dimension / alphabet size (fits int everywhere)
	maxWireKnob  = 1 << 20   // copies / sparsity / independence parameters
	maxWireReps  = 1 << 8    // FpEstimator sampler count (each is a full L1 sampler)
	maxWireWords = 1 << 27   // total derived sketch words across repetitions
)

func validWireDim(n uint64) bool { return n >= 1 && n <= maxWireDim }

// predRows mirrors the count-sketch depth default shared by the Lp sampler
// and heavy hitters: max(7, ⌈log2 n⌉ + 4).
func predRows(n uint64) float64 {
	return math.Max(7, math.Ceil(math.Log2(float64(n)))+4)
}

// predLpWords mirrors core.NewLpSampler's sizing: per repetition a
// count-sketch of rows × 6m cells plus the k scaling coefficients and the
// fixed AMS sketch, plus the shared norm estimator. Returns +Inf for
// parameters whose intermediate sizing already overflows.
func predLpWords(n uint64, p, eps, delta float64, copies uint64) float64 {
	var m, k float64
	if p == 1 {
		m = 16 * math.Max(1, math.Log2(1/eps))
		k = 4 * math.Log2(1/eps)
	} else {
		m = 16 * math.Pow(eps, -math.Max(0, p-1))
		k = 10 / math.Abs(p-1)
	}
	reps := float64(copies)
	if copies == 0 {
		reps = math.Log(1/delta) * math.Pow(2, p) / eps
	}
	const amsWords = 9*6 + 9*4 // counters + 4-wise sign seeds
	return reps*(predRows(n)*6*m+k+amsWords) + 140
}

func unitOpen(v float64) bool { return v > 0 && v < 1 }

func badConfig(kind codec.Kind) error {
	return fmt.Errorf("streamsample: %v config block: %w", kind, codec.ErrBadConfig)
}

// Load reconstructs a ready-to-merge sketch from MarshalBinary bytes alone:
// the config block and seed rebuild the sketch's shape and randomness, the
// payload restores its linear state. The concrete type matches the sketch
// kind recorded in the bytes; type-switch or merge into a same-kind sketch
// as needed. Corrupt input fails with the codec sentinels (ErrBadMagic,
// ErrBadVersion, ErrBadKind, ErrBadFingerprint, ErrBadConfig, ErrTruncated,
// ErrTrailingData under errors.Is).
func Load(data []byte) (Sketch, error) {
	d, err := codec.NewDecoder(data)
	if err != nil {
		return nil, fmt.Errorf("streamsample: %w", err)
	}
	var s interface {
		Sketch
		decode(d *codec.Decoder) error
	}
	switch d.Kind() {
	case codec.KindLpSampler:
		s = &LpSampler{}
	case codec.KindL0Sampler:
		s = &L0Sampler{}
	case codec.KindDuplicateFinder:
		s = &DuplicateFinder{}
	case codec.KindHeavyHitters:
		s = &HeavyHitters{}
	case codec.KindTwoPassL0Sampler:
		s = &TwoPassL0Sampler{}
	case codec.KindFpEstimator:
		s = &FpEstimator{}
	default:
		return nil, fmt.Errorf("streamsample: unknown sketch kind %v: %w", d.Kind(), codec.ErrBadKind)
	}
	if err := s.decode(d); err != nil {
		return nil, err
	}
	return s, nil
}

// unmarshalInto drives one type's decode from raw bytes, enforcing that the
// bytes hold the receiver's kind.
func unmarshalInto(data []byte, kind codec.Kind, decode func(*codec.Decoder) error) error {
	d, err := codec.NewDecoder(data)
	if err != nil {
		return fmt.Errorf("streamsample: %w", err)
	}
	if d.Kind() != kind {
		return fmt.Errorf("streamsample: bytes hold a %v, receiver wants %v: %w",
			d.Kind(), kind, codec.ErrBadKind)
	}
	return decode(d)
}

// finish wraps the decoder's final consistency check.
func finishDecode(d *codec.Decoder) error {
	if err := d.Finish(); err != nil {
		return fmt.Errorf("streamsample: %w", err)
	}
	return nil
}

// ---------------------------------------------------------------------------
// LpSampler
// ---------------------------------------------------------------------------

// MarshalBinary implements encoding.BinaryMarshaler: kind, config block
// (n, p, ε, δ, copies, seed), fingerprint, then the per-repetition
// count-sketch/AMS state and the shared norm sketch.
func (s *LpSampler) MarshalBinary() ([]byte, error) {
	e := codec.NewEncoder(codec.KindLpSampler)
	e.U64(uint64(s.n))
	e.F64(s.p)
	e.F64(s.opts.eps)
	e.F64(s.opts.delta)
	e.U64(uint64(s.opts.copies))
	e.U64(s.opts.seed)
	e.SealHeader()
	s.inner.AppendState(e)
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler by rebuilding the
// receiver from MarshalBinary bytes of an LpSampler. On error the receiver
// is left unchanged.
func (s *LpSampler) UnmarshalBinary(data []byte) error {
	return unmarshalInto(data, codec.KindLpSampler, s.decode)
}

func (s *LpSampler) decode(d *codec.Decoder) error {
	n := d.U64()
	p := d.F64()
	eps := d.F64()
	delta := d.F64()
	copies := d.U64()
	seed := d.U64()
	if err := d.VerifyHeader(); err != nil {
		return fmt.Errorf("streamsample: %w", err)
	}
	// Reject unconstructible parameters, then hold the derived state to the
	// uniform word budget: the scaling-factor independence k blows up as p
	// approaches 1, m and the default repetition count grow with 1/ε, and
	// the total cell count is their product across repetitions and rows.
	if !validWireDim(n) || !(p > 0 && p < 2) || !unitOpen(eps) || !unitOpen(delta) ||
		copies > maxWireKnob ||
		predLpWords(n, p, eps, delta, copies) > maxWireWords {
		return badConfig(codec.KindLpSampler)
	}
	tmp := NewLpSampler(p, int(n), WithSeed(seed), WithEps(eps), WithDelta(delta),
		WithCopies(int(copies)))
	tmp.inner.RestoreState(d)
	if err := finishDecode(d); err != nil {
		return err
	}
	*s = *tmp
	return nil
}

// ---------------------------------------------------------------------------
// L0Sampler
// ---------------------------------------------------------------------------

// MarshalBinary implements encoding.BinaryMarshaler: kind, config block
// (n, δ, sparsity override, nested flag, seed), fingerprint, then every
// subsampling level's syndromes and verification fingerprint.
func (s *L0Sampler) MarshalBinary() ([]byte, error) {
	e := codec.NewEncoder(codec.KindL0Sampler)
	e.U64(uint64(s.n))
	e.F64(s.opts.delta)
	e.U64(uint64(s.opts.sBudget))
	e.Bool(s.opts.nested)
	e.U64(s.opts.seed)
	e.SealHeader()
	s.inner.AppendState(e)
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler by rebuilding the
// receiver from MarshalBinary bytes of an L0Sampler. On error the receiver
// is left unchanged.
func (s *L0Sampler) UnmarshalBinary(data []byte) error {
	return unmarshalInto(data, codec.KindL0Sampler, s.decode)
}

func (s *L0Sampler) decode(d *codec.Decoder) error {
	n := d.U64()
	delta := d.F64()
	sBudget := d.U64()
	nested := d.Bool()
	seed := d.U64()
	if err := d.VerifyHeader(); err != nil {
		return fmt.Errorf("streamsample: %w", err)
	}
	if !validWireDim(n) || !unitOpen(delta) || sBudget > maxWireKnob {
		return badConfig(codec.KindL0Sampler)
	}
	// Word budget, mirroring core.NewL0Sampler: one 2s+1-word recoverer per
	// subsampling level.
	predS := float64(sBudget)
	if sBudget == 0 {
		predS = math.Max(4, math.Ceil(4*math.Log2(1/delta)))
	}
	predLevels := math.Max(1, math.Ceil(math.Log2(float64(n))))
	if predLevels*(2*predS+1) > maxWireWords {
		return badConfig(codec.KindL0Sampler)
	}
	opts := []Option{WithSeed(seed), WithDelta(delta), WithSparsity(int(sBudget))}
	if nested {
		opts = append(opts, WithNestedLevels())
	}
	tmp := NewL0Sampler(int(n), opts...)
	tmp.inner.RestoreState(d)
	if err := finishDecode(d); err != nil {
		return err
	}
	*s = *tmp
	return nil
}

// ---------------------------------------------------------------------------
// DuplicateFinder
// ---------------------------------------------------------------------------

// MarshalBinary implements encoding.BinaryMarshaler: kind, config block
// (n, δ, seed), fingerprint, then the underlying L1 sampler's state (which
// already contains the pigeonhole prefix).
func (d *DuplicateFinder) MarshalBinary() ([]byte, error) {
	e := codec.NewEncoder(codec.KindDuplicateFinder)
	e.U64(uint64(d.n))
	e.F64(d.opts.delta)
	e.U64(d.opts.seed)
	e.SealHeader()
	d.inner.AppendState(e)
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler by rebuilding the
// receiver from MarshalBinary bytes of a DuplicateFinder. On error the
// receiver is left unchanged.
func (d *DuplicateFinder) UnmarshalBinary(data []byte) error {
	return unmarshalInto(data, codec.KindDuplicateFinder, d.decode)
}

func (d *DuplicateFinder) decode(dec *codec.Decoder) error {
	n := dec.U64()
	delta := dec.F64()
	seed := dec.U64()
	if err := dec.VerifyHeader(); err != nil {
		return fmt.Errorf("streamsample: %w", err)
	}
	if !validWireDim(n) || !unitOpen(delta) {
		return badConfig(codec.KindDuplicateFinder)
	}
	// Word budget, mirroring duplicates.NewPositiveFinder: an L1 sampler at
	// ε = 1/2 with ~8·ln(1/δ) repetitions.
	dfCopies := math.Max(4, math.Ceil(math.Log(1/delta)*8))
	if dfCopies > maxWireKnob ||
		predLpWords(n, 1, 0.5, 0.5, uint64(dfCopies)) > maxWireWords {
		return badConfig(codec.KindDuplicateFinder)
	}
	// Skip the constructor's O(n) pigeonhole prefix: the serialized sampler
	// state about to be restored already contains it.
	o := buildOptions([]Option{WithSeed(seed), WithDelta(delta)})
	tmp := &DuplicateFinder{n: int(n), opts: o,
		inner: duplicates.NewFinderForRestore(int(n), o.delta, o.rng())}
	tmp.inner.RestoreState(dec)
	if err := finishDecode(dec); err != nil {
		return err
	}
	*d = *tmp
	return nil
}

// ---------------------------------------------------------------------------
// HeavyHitters
// ---------------------------------------------------------------------------

// MarshalBinary implements encoding.BinaryMarshaler: kind, config block
// (n, p, φ, seed), fingerprint, then the count-sketch cells and norm
// counters.
func (h *HeavyHitters) MarshalBinary() ([]byte, error) {
	e := codec.NewEncoder(codec.KindHeavyHitters)
	e.U64(uint64(h.n))
	e.F64(h.p)
	e.F64(h.phi)
	e.U64(h.opts.seed)
	e.SealHeader()
	h.inner.AppendState(e)
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler by rebuilding the
// receiver from MarshalBinary bytes of a HeavyHitters sketch. On error the
// receiver is left unchanged.
func (h *HeavyHitters) UnmarshalBinary(data []byte) error {
	return unmarshalInto(data, codec.KindHeavyHitters, h.decode)
}

func (h *HeavyHitters) decode(d *codec.Decoder) error {
	n := d.U64()
	p := d.F64()
	phi := d.F64()
	seed := d.U64()
	if err := d.VerifyHeader(); err != nil {
		return fmt.Errorf("streamsample: %w", err)
	}
	// Word budget, mirroring heavyhitters.New: rows × 6m count-sketch cells
	// with m = Θ(φ^{-p}), plus the norm estimator's counters.
	if !validWireDim(n) || !(p > 0 && p <= 2) || !unitOpen(phi) ||
		predRows(n)*6*math.Ceil(12*math.Pow(phi, -p))+400 > maxWireWords {
		return badConfig(codec.KindHeavyHitters)
	}
	tmp := NewHeavyHitters(p, phi, int(n), WithSeed(seed))
	tmp.inner.RestoreState(d)
	if err := finishDecode(d); err != nil {
		return err
	}
	*h = *tmp
	return nil
}

// ---------------------------------------------------------------------------
// TwoPassL0Sampler
// ---------------------------------------------------------------------------

// MarshalBinary implements encoding.BinaryMarshaler: kind, config block
// (n, δ, seed), fingerprint, then the dynamic state — pass marker,
// committed level, pass-1 estimator fingerprints, pass-2 recoverer
// measurements. A sampler checkpointed between passes resumes exactly where
// it stopped.
func (s *TwoPassL0Sampler) MarshalBinary() ([]byte, error) {
	e := codec.NewEncoder(codec.KindTwoPassL0Sampler)
	e.U64(uint64(s.n))
	e.F64(s.opts.delta)
	e.U64(s.opts.seed)
	e.SealHeader()
	s.inner.AppendState(e)
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler by rebuilding the
// receiver from MarshalBinary bytes of a TwoPassL0Sampler. On error the
// receiver is left unchanged.
func (s *TwoPassL0Sampler) UnmarshalBinary(data []byte) error {
	return unmarshalInto(data, codec.KindTwoPassL0Sampler, s.decode)
}

func (s *TwoPassL0Sampler) decode(d *codec.Decoder) error {
	n := d.U64()
	delta := d.F64()
	seed := d.U64()
	if err := d.VerifyHeader(); err != nil {
		return fmt.Errorf("streamsample: %w", err)
	}
	// Word budget, mirroring core.NewTwoPassL0Sampler: the level-tester
	// fingerprints plus one 2s+1-word recoverer with s = Θ(log 1/δ).
	tpS := 4 * math.Max(4, math.Ceil(math.Log2(4/delta)))
	if !validWireDim(n) || !unitOpen(delta) ||
		(math.Ceil(math.Log2(float64(n)))+2)*12+2*tpS+1 > maxWireWords {
		return badConfig(codec.KindTwoPassL0Sampler)
	}
	tmp := NewTwoPassL0Sampler(int(n), WithSeed(seed), WithDelta(delta))
	tmp.inner.RestoreState(d)
	if err := finishDecode(d); err != nil {
		return err
	}
	*s = *tmp
	return nil
}

// ---------------------------------------------------------------------------
// FpEstimator
// ---------------------------------------------------------------------------

// MarshalBinary implements encoding.BinaryMarshaler: kind, config block
// (n, p, sampler count, seed), fingerprint, then every L1 sampler's state
// and the L1 norm counters.
func (e *FpEstimator) MarshalBinary() ([]byte, error) {
	enc := codec.NewEncoder(codec.KindFpEstimator)
	enc.U64(uint64(e.n))
	enc.F64(e.p)
	enc.U64(uint64(e.samples))
	enc.U64(e.opts.seed)
	enc.SealHeader()
	e.inner.AppendState(enc)
	return enc.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler by rebuilding the
// receiver from MarshalBinary bytes of an FpEstimator. On error the
// receiver is left unchanged.
func (e *FpEstimator) UnmarshalBinary(data []byte) error {
	return unmarshalInto(data, codec.KindFpEstimator, e.decode)
}

func (e *FpEstimator) decode(d *codec.Decoder) error {
	n := d.U64()
	p := d.F64()
	samples := d.U64()
	seed := d.U64()
	if err := d.VerifyHeader(); err != nil {
		return fmt.Errorf("streamsample: %w", err)
	}
	// Word budget, mirroring moments.NewFp: `samples` full L1 samplers at
	// the fixed ε = δ = 0.25, plus the L1 norm counters.
	if !validWireDim(n) || !(p > 2) || math.IsInf(p, 1) ||
		samples < 1 || samples > maxWireReps ||
		float64(samples)*predLpWords(n, 1, 0.25, 0.25, 0)+120 > maxWireWords {
		return badConfig(codec.KindFpEstimator)
	}
	tmp := NewFpEstimator(p, int(n), int(samples), WithSeed(seed))
	tmp.inner.RestoreState(d)
	if err := finishDecode(d); err != nil {
		return err
	}
	*e = *tmp
	return nil
}
