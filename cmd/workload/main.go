// Command workload generates the benchmark workloads of the experiments as
// text streams, for piping into cmd/lpsample and cmd/dupfind or into other
// systems under comparison.
//
//	workload -kind turnstile -n 1000 -len 5000      # "index delta" lines
//	workload -kind zipf -n 1000 -alpha 1.1          # skewed signed vector
//	workload -kind sparse -n 1000 -support 20       # exact support with churn
//	workload -kind strict -n 1000 -len 5000         # strict turnstile
//	workload -kind duplicates -n 1000               # n+1 items, one per line
//
// Update kinds print "index delta" lines; the duplicates kind prints one
// item per line (feed to dupfind).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"repro/internal/stream"
)

func main() {
	kind := flag.String("kind", "turnstile", "turnstile | zipf | sparse | strict | duplicates")
	n := flag.Int("n", 1024, "vector dimension / alphabet size")
	length := flag.Int("len", 4096, "stream length (turnstile, strict)")
	maxAbs := flag.Int64("max", 100, "maximum update magnitude")
	alpha := flag.Float64("alpha", 1.0, "zipf exponent")
	support := flag.Int("support", 16, "support size (sparse)")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	r := rand.New(rand.NewPCG(*seed, *seed^0xD1B54A32D192ED03))
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	var st stream.Stream
	switch *kind {
	case "turnstile":
		st = stream.RandomTurnstile(*n, *length, *maxAbs, r)
	case "zipf":
		st = stream.ZipfSigned(*n, *alpha, *maxAbs, r)
	case "sparse":
		st = stream.SparseVector(*n, *support, *maxAbs, r)
	case "strict":
		st = stream.StrictTurnstile(*n, *length, *maxAbs, r)
	case "duplicates":
		for _, it := range stream.DuplicateItems(*n, -1, r) {
			fmt.Fprintln(w, it)
		}
		return
	default:
		fmt.Fprintf(os.Stderr, "workload: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	for _, u := range st {
		fmt.Fprintf(w, "%d %d\n", u.Index, u.Delta)
	}
}
