// Command workload generates the benchmark workloads of the experiments as
// text streams, for piping into cmd/lpsample and cmd/dupfind or into other
// systems under comparison — and, with -ingest, drives them end-to-end
// through the sharded ingestion engine to report serial-vs-sharded
// throughput.
//
//	workload -kind turnstile -n 1000 -len 5000      # "index delta" lines
//	workload -kind zipf -n 1000 -alpha 1.1          # skewed signed vector
//	workload -kind sparse -n 1000 -support 20       # exact support with churn
//	workload -kind strict -n 1000 -len 5000         # strict turnstile
//	workload -kind duplicates -n 1000               # n+1 items, one per line
//
//	workload -kind turnstile -n 65536 -len 10000000 -ingest countsketch
//	workload -kind turnstile -len 1000000 -ingest l0 -shards 8 -batch 2048
//
// Update kinds print "index delta" lines; the duplicates kind prints one
// item per line (feed to dupfind). With -ingest the stream is not printed:
// it is fed once through a single serial sketch and once through the engine
// (same-seed replicas, shard → batch → merge), and a throughput comparison
// is written to stderr. Supported -ingest sinks: countsketch, countmin, l0,
// lp, hh.
//
// # Distributed export / remote merge
//
// -export and -import demonstrate the serialized-sketch pattern end to end:
// N processes each ingest a disjoint shard of the stream into a same-seed
// public sketch and emit its wire bytes; one process loads the byte files
// and merges them — by sketch linearity the merged sketch answers exactly
// like one process that ingested everything.
//
//	workload -len 100000 -sketch l0 -shard 0/3 -export shard0.sketch
//	workload -len 100000 -sketch l0 -shard 1/3 -export shard1.sketch
//	workload -len 100000 -sketch l0 -shard 2/3 -export shard2.sketch
//	workload -import shard0.sketch,shard1.sketch,shard2.sketch
//
// -push replaces the file with a running sketchd: the same shard sketch is
// POSTed to the serving tier (created on the fly under -tenant/-name if not
// yet registered), so the N-exporters-one-merger pattern exercises the real
// network path end to end:
//
//	workload -len 100000 -sketch l0 -shard 0/3 -push http://127.0.0.1:7931
//	workload -len 100000 -sketch l0 -shard 1/3 -push http://127.0.0.1:7931
//	workload -len 100000 -sketch l0 -shard 2/3 -push http://127.0.0.1:7931
//	curl http://127.0.0.1:7931/v1/tenants/workload/sketches/stream/sample
//
// All exporters must share -seed (it seeds both the generated stream and
// the sketch randomness); -shard i/N takes every N-th update starting at i,
// so the N slices partition the stream. -import is self-describing: the
// files carry their kind, config and seed, and mismatched shards fail with
// the typed merge errors.
//
// By default -import is resilient: a file that cannot be read (after a few
// retries for transient errors), decoded or merged is skipped with a note,
// and the summary line counts the skips by reason — merging the shards that
// did arrive is usually more useful than nothing. -strict restores
// fail-on-first-problem for pipelines that need all-or-nothing semantics.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"strings"
	"time"

	streamsample "repro"
	"repro/internal/core"
	"repro/internal/countmin"
	"repro/internal/countsketch"
	"repro/internal/engine"
	"repro/internal/heavyhitters"
	"repro/internal/retry"
	"repro/internal/sketchd"
	"repro/internal/stream"
)

func main() {
	kind := flag.String("kind", "turnstile", "turnstile | zipf | sparse | strict | duplicates")
	n := flag.Int("n", 1024, "vector dimension / alphabet size")
	length := flag.Int("len", 4096, "stream length (turnstile, strict)")
	maxAbs := flag.Int64("max", 100, "maximum update magnitude")
	alpha := flag.Float64("alpha", 1.0, "zipf exponent")
	support := flag.Int("support", 16, "support size (sparse)")
	seed := flag.Uint64("seed", 1, "random seed")
	ingest := flag.String("ingest", "", "drive the stream through a sketch instead of printing it: countsketch | countmin | l0 | lp | hh")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "engine shard count (-ingest)")
	batch := flag.Int("batch", 2048, "engine batch size (-ingest)")
	export := flag.String("export", "", "ingest the stream into a -sketch sketch and write its serialized bytes to this file")
	importList := flag.String("import", "", "comma-separated sketch files: load, merge and query them (no stream is generated)")
	sketchKind := flag.String("sketch", "l0", "public sketch kind for -export: l0 | lp | hh")
	shardSpec := flag.String("shard", "0/1", "with -export or -push, ingest only the i-th of N disjoint stream slices, as \"i/N\"")
	strict := flag.Bool("strict", false, "with -import, fail on the first unusable file instead of skipping it with a report")
	push := flag.String("push", "", "like -export, but POST the sketch bytes to a running sketchd at this base URL instead of a file")
	tenant := flag.String("tenant", "workload", "with -push, the target tenant")
	sketchName := flag.String("name", "stream", "with -push, the target sketch name")
	flag.Parse()

	if *importList != "" {
		if err := runImport(strings.Split(*importList, ","), *strict); err != nil {
			fmt.Fprintf(os.Stderr, "workload: %v\n", err)
			os.Exit(2)
		}
		return
	}

	// Reject bad -ingest/-export parameters before the (possibly
	// multi-second) stream generation, not after.
	switch *ingest {
	case "", "countsketch", "countmin", "l0", "lp", "hh":
	default:
		fmt.Fprintf(os.Stderr, "workload: unknown -ingest sink %q (want countsketch, countmin, l0, lp or hh)\n", *ingest)
		os.Exit(2)
	}
	if *export != "" || *push != "" {
		switch *sketchKind {
		case "l0", "lp", "hh":
		default:
			fmt.Fprintf(os.Stderr, "workload: unknown -sketch kind %q (want l0, lp or hh)\n", *sketchKind)
			os.Exit(2)
		}
		if _, _, err := parseShard(*shardSpec); err != nil {
			fmt.Fprintf(os.Stderr, "workload: %v\n", err)
			os.Exit(2)
		}
	}

	r := rand.New(rand.NewPCG(*seed, *seed^0xD1B54A32D192ED03))

	var st stream.Stream
	switch *kind {
	case "turnstile":
		st = stream.RandomTurnstile(*n, *length, *maxAbs, r)
	case "zipf":
		st = stream.ZipfSigned(*n, *alpha, *maxAbs, r)
	case "sparse":
		st = stream.SparseVector(*n, *support, *maxAbs, r)
	case "strict":
		st = stream.StrictTurnstile(*n, *length, *maxAbs, r)
	case "duplicates":
		if *ingest != "" {
			fmt.Fprintln(os.Stderr, "workload: -ingest drives update streams; use an update kind")
			os.Exit(2)
		}
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for _, it := range stream.DuplicateItems(*n, -1, r) {
			fmt.Fprintln(w, it)
		}
		return
	default:
		fmt.Fprintf(os.Stderr, "workload: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	if *export != "" {
		if err := runExport(*export, *sketchKind, *shardSpec, st, *n, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "workload: %v\n", err)
			os.Exit(2)
		}
		return
	}

	if *push != "" {
		if err := runPush(*push, *tenant, *sketchName, *sketchKind, *shardSpec, st, *n, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "workload: %v\n", err)
			os.Exit(2)
		}
		return
	}

	if *ingest != "" {
		if err := drive(*ingest, st, *n, *seed, *shards, *batch); err != nil {
			fmt.Fprintf(os.Stderr, "workload: %v\n", err)
			os.Exit(2)
		}
		return
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, u := range st {
		fmt.Fprintf(w, "%d %d\n", u.Index, u.Delta)
	}
}

// drive feeds the stream through one serial sketch and through the sharded
// engine, and reports both throughputs. The factory is re-invoked with the
// same seed everywhere, so the engine's replicas are mergeable and the
// merged result summarizes the exact same vector as the serial sink.
func drive(sink string, st stream.Stream, n int, seed uint64, shards, batch int) error {
	rng := func() *rand.Rand { return rand.New(rand.NewPCG(seed^0xBEEF, seed^0x9E3779B97F4A7C15)) }
	var factory func() stream.Sink
	var merge func(dst, src stream.Sink) error
	switch sink {
	case "countsketch":
		factory = func() stream.Sink { return countsketch.New(64, 12, rng()) }
		merge = func(dst, src stream.Sink) error {
			return dst.(*countsketch.Sketch).Merge(src.(*countsketch.Sketch))
		}
	case "countmin":
		factory = func() stream.Sink { return countmin.New(1024, 5, rng()) }
		merge = func(dst, src stream.Sink) error {
			return dst.(*countmin.Sketch).Merge(src.(*countmin.Sketch))
		}
	case "l0":
		factory = func() stream.Sink { return core.NewL0Sampler(core.L0Config{N: n, Delta: 0.2}, rng()) }
		merge = func(dst, src stream.Sink) error {
			return dst.(*core.L0Sampler).Merge(src.(*core.L0Sampler))
		}
	case "lp":
		factory = func() stream.Sink {
			return core.NewLpSampler(core.LpConfig{P: 1, N: n, Eps: 0.25, Delta: 0.2}, rng())
		}
		merge = func(dst, src stream.Sink) error {
			return dst.(*core.LpSampler).Merge(src.(*core.LpSampler))
		}
	case "hh":
		factory = func() stream.Sink {
			return heavyhitters.New(heavyhitters.Config{P: 1, Phi: 0.1, N: n}, rng())
		}
		merge = func(dst, src stream.Sink) error {
			return dst.(*heavyhitters.Sketch).Merge(src.(*heavyhitters.Sketch))
		}
	default:
		// Unreachable: main validates the sink name before generating the
		// stream; kept as a guard for direct callers.
		return fmt.Errorf("unknown -ingest sink %q (want countsketch, countmin, l0, lp or hh)", sink)
	}

	serialSink := factory()
	serialStart := time.Now()
	st.Feed(serialSink)
	serialDur := time.Since(serialStart)

	eng := engine.New(engine.Config{Shards: shards, BatchSize: batch},
		func(int) stream.Sink { return factory() }, merge)
	engineStart := time.Now()
	eng.Feed(st)
	if _, err := eng.Results(); err != nil {
		return fmt.Errorf("engine merge: %w", err)
	}
	engineDur := time.Since(engineStart)

	updates := float64(len(st))
	fmt.Fprintf(os.Stderr, "sink=%s updates=%d n=%d\n", sink, len(st), n)
	fmt.Fprintf(os.Stderr, "serial: %12.0f updates/s  (%v)\n", updates/serialDur.Seconds(), serialDur.Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "engine: %12.0f updates/s  (%v)  shards=%d batch=%d\n",
		updates/engineDur.Seconds(), engineDur.Round(time.Millisecond), shards, batch)
	fmt.Fprintf(os.Stderr, "speedup: %.2fx\n", serialDur.Seconds()/engineDur.Seconds())
	return nil
}

// runExport ingests the shard slice of the stream into a fresh same-seed
// public sketch and writes its MarshalBinary bytes to path. The stream is
// generated deterministically from the flags, so N processes running with
// the same flags and -shard 0/N .. N-1/N ingest disjoint slices whose union
// is the whole stream.
func runExport(path, kind, shardSpec string, st stream.Stream, n int, seed uint64) error {
	data, idx, cnt, updates, err := buildShardSketch(kind, shardSpec, st, n, seed)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "exported shard %d/%d: %d updates, %d sketch bytes -> %s\n",
		idx, cnt, updates, len(data), path)
	return nil
}

// runPush is -export over the network: the same shard sketch, POSTed to a
// running sketchd instead of written to a file. A sketch that is not yet
// registered is created on the fly from the flag-derived spec — the spec's
// defaults match the sketches buildShardSketch constructs, so every -push
// exporter sharing -seed produces mergeable same-seed replicas.
func runPush(addr, tenant, name, kind, shardSpec string, st stream.Stream, n int, seed uint64) error {
	data, idx, cnt, updates, err := buildShardSketch(kind, shardSpec, st, n, seed)
	if err != nil {
		return err
	}
	ctx := context.Background()
	client := sketchd.NewClient(addr)
	push := func() error { return client.PushSketch(ctx, tenant, name, data, false) }
	err = push()
	if errors.Is(err, sketchd.ErrNotFound) {
		spec := sketchd.Spec{Kind: kind, N: n, Seed: seed}
		if cerr := client.Create(ctx, tenant, name, spec); cerr != nil && !errors.Is(cerr, sketchd.ErrExists) {
			return fmt.Errorf("creating %s/%s: %w", tenant, name, cerr)
		}
		err = push()
	}
	if err != nil {
		return fmt.Errorf("pushing shard %d/%d to %s: %w", idx, cnt, addr, err)
	}
	fmt.Fprintf(os.Stderr, "pushed shard %d/%d: %d updates, %d sketch bytes -> %s (%s/%s)\n",
		idx, cnt, updates, len(data), addr, tenant, name)
	return nil
}

// buildShardSketch ingests the shard slice of the stream into a fresh
// same-seed public sketch and returns its wire bytes.
func buildShardSketch(kind, shardSpec string, st stream.Stream, n int, seed uint64) (data []byte, idx, cnt, updates int, err error) {
	idx, cnt, err = parseShard(shardSpec)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	var sk streamsample.Sketch
	switch kind {
	case "l0":
		sk = streamsample.NewL0Sampler(n, streamsample.WithSeed(seed))
	case "lp":
		sk = streamsample.NewLpSampler(1, n, streamsample.WithSeed(seed))
	case "hh":
		sk = streamsample.NewHeavyHitters(1, 0.1, n, streamsample.WithSeed(seed))
	default:
		return nil, 0, 0, 0, fmt.Errorf("unknown -sketch kind %q (want l0, lp or hh)", kind)
	}
	shard := make(stream.Stream, 0, len(st)/cnt+1)
	for j := idx; j < len(st); j += cnt {
		shard = append(shard, st[j])
	}
	sk.ProcessBatch(shard)
	data, err = sk.MarshalBinary()
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("marshal: %w", err)
	}
	return data, idx, cnt, len(shard), nil
}

// parseShard parses the "i/N" disjoint-slice selector of -shard.
func parseShard(spec string) (idx, cnt int, err error) {
	if _, err := fmt.Sscanf(spec, "%d/%d", &idx, &cnt); err != nil || cnt < 1 || idx < 0 || idx >= cnt {
		return 0, 0, fmt.Errorf("bad -shard %q (want \"i/N\" with 0 <= i < N)", spec)
	}
	return idx, cnt, nil
}

// readSketchFile reads one exported sketch, retrying transient I/O errors
// with capped backoff; a missing file is permanent and fails immediately.
func readSketchFile(path string) ([]byte, error) {
	var data []byte
	err := retry.Do(context.Background(), retry.Policy{Attempts: 3}, func() error {
		var err error
		data, err = os.ReadFile(path)
		if errors.Is(err, os.ErrNotExist) {
			return retry.Permanent(err)
		}
		return err
	})
	return data, err
}

// importSkips counts the files -import could not use, by typed reason.
type importSkips struct {
	unreadable  int // read failed after retries
	undecodable int // bytes did not decode as a sketch (codec errors)
	unmergeable int // decoded, but incompatible with the shards so far
}

func (k importSkips) total() int { return k.unreadable + k.undecodable + k.unmergeable }

func (k importSkips) String() string {
	return fmt.Sprintf("%d unreadable, %d undecodable, %d unmergeable",
		k.unreadable, k.undecodable, k.unmergeable)
}

// runImport loads each serialized sketch, merges the rest into the first —
// the remote-merge half of the distributed pattern — and queries the merged
// sketch. The files are self-describing: kind, config and seed travel with
// the bytes, and shards from different seeds or configs are rejected with
// the typed merge errors.
//
// Unusable files are skipped and counted by reason unless strict is set, in
// which case the first problem aborts the import.
func runImport(files []string, strict bool) error {
	var merged streamsample.Sketch
	var skips importSkips
	used := 0
	skip := func(f, reason string, err error, counter *int) error {
		if strict {
			return fmt.Errorf("%s %s: %w", reason, f, err)
		}
		*counter++
		fmt.Fprintf(os.Stderr, "workload: skipping %s file %s: %v\n", reason, f, err)
		return nil
	}
	for _, f := range files {
		f = strings.TrimSpace(f)
		data, err := readSketchFile(f)
		if err != nil {
			if err := skip(f, "unreadable", err, &skips.unreadable); err != nil {
				return err
			}
			continue
		}
		s, err := streamsample.Load(data)
		if err != nil {
			if err := skip(f, "undecodable", err, &skips.undecodable); err != nil {
				return err
			}
			continue
		}
		if merged == nil {
			merged = s
			used++
			continue
		}
		if err := merged.Merge(s); err != nil {
			if err := skip(f, "unmergeable", err, &skips.unmergeable); err != nil {
				return err
			}
			continue
		}
		used++
	}
	if merged == nil {
		if skips.total() > 0 {
			return fmt.Errorf("-import: no usable sketch among %d file(s): %v", len(files), skips)
		}
		return fmt.Errorf("-import needs at least one file")
	}
	fmt.Fprintf(os.Stderr, "merged %d/%d shard sketches (%T, %d bits); skipped: %v\n",
		used, len(files), merged, merged.SpaceBits(), skips)
	switch s := merged.(type) {
	case *streamsample.L0Sampler:
		if i, v, ok := s.Sample(); ok {
			fmt.Printf("l0 sample index=%d value=%d\n", i, v)
		} else {
			fmt.Println("l0 sample failed")
		}
	case *streamsample.LpSampler:
		if i, est, ok := s.Sample(); ok {
			fmt.Printf("lp sample index=%d estimate=%g\n", i, est)
		} else {
			fmt.Println("lp sample failed")
		}
	case *streamsample.HeavyHitters:
		fmt.Printf("heavy hitters: %v\n", s.Report())
	default:
		fmt.Printf("loaded %T\n", merged)
	}
	return nil
}
