// Command benchgate is the CI benchmark-regression gate: it runs (or reads)
// the ingest/query benchmark suite, reduces -count repetitions to best
// ns/op per benchmark, and compares against the committed
// BENCH_BASELINE.json, exiting non-zero on a >threshold geomean
// regression, on any single benchmark exceeding the per-benchmark -cap
// ratio (a targeted hot-path regression must not hide behind a flat
// geomean), or on a benchmark missing from the run.
//
// Modes:
//
//	benchgate                        # run the suite, gate against -baseline
//	benchgate -update                # run the suite, rewrite the baseline
//	benchgate -input bench.txt       # gate a pre-captured `go test -bench` log
//	benchgate -input - < bench.txt   # same, from stdin
//
// The suite is the engine's headline ingest and query benchmarks at the
// repository root (see -bench); -count repetitions with a time-based
// -benchtime keep the numbers stable enough for a 10% gate on a quiet
// machine. Refresh the baseline with `make bench-baseline` on the machine
// class that runs the gate.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"

	"repro/internal/benchgate"
)

// defaultBench anchors each name so satellites like BenchmarkIngestEngineSkew
// never drift into the gate set unrefreshed.
const defaultBench = "^(BenchmarkIngestSerial|BenchmarkIngestSerialBatched|BenchmarkIngestEngine|" +
	"BenchmarkIngestL0Serial|BenchmarkIngestL0Engine|BenchmarkQueryL0Sample|" +
	"BenchmarkQueryGraphConnectivity|BenchmarkQueryDuplicatesFind|" +
	"BenchmarkServeIngestRaw|BenchmarkServeIngestSketch)$"

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_BASELINE.json", "committed baseline file")
		input        = flag.String("input", "", "pre-captured `go test -bench` output ('-' for stdin); empty runs the suite")
		update       = flag.Bool("update", false, "rewrite the baseline from this run instead of gating")
		threshold    = flag.Float64("threshold", 0.10, "allowed geomean regression (0.10 = +10%)")
		capRatio     = flag.Float64("cap", 1.5, "per-benchmark current/baseline ratio ceiling (0 disables)")
		benchRe      = flag.String("bench", defaultBench, "benchmark regexp passed to go test")
		pkg          = flag.String("pkg", ".", "package holding the suite")
		benchtime    = flag.String("benchtime", "300ms", "go test -benchtime per benchmark")
		count        = flag.Int("count", 3, "go test -count repetitions (best run wins)")
	)
	flag.Parse()

	samples, err := collect(*input, *benchRe, *pkg, *benchtime, *count)
	if err != nil {
		fatal(err)
	}
	best := benchgate.Best(samples)
	if len(best) == 0 {
		fatal(fmt.Errorf("no benchmark results matched %q", *benchRe))
	}

	if *update {
		b := benchgate.Baseline{
			Version:    1,
			Go:         runtime.Version(),
			Note:       "best ns/op per benchmark; refresh with `make bench-baseline` on the gate's machine class",
			Benchmarks: best,
		}
		if err := benchgate.WriteBaseline(*baselinePath, b); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s with %d benchmarks\n", *baselinePath, len(best))
		return
	}

	base, err := benchgate.LoadBaseline(*baselinePath)
	if err != nil {
		fatal(fmt.Errorf("%w (run `benchgate -update` to create it)", err))
	}
	rep := benchgate.Compare(base.Benchmarks, best, *threshold, *capRatio)
	rep.Render(os.Stdout)
	if !rep.Pass() {
		os.Exit(1)
	}
}

// collect obtains raw benchmark output: from a file, stdin, or by running
// the suite via the go tool (streamed to stderr so CI logs keep the live
// numbers).
func collect(input, benchRe, pkg, benchtime string, count int) (map[string][]float64, error) {
	switch input {
	case "":
		args := []string{"test", "-run", "^$", "-bench", benchRe,
			"-benchtime", benchtime, "-count", fmt.Sprint(count), pkg}
		fmt.Fprintf(os.Stderr, "benchgate: go %v\n", args)
		var buf bytes.Buffer
		cmd := exec.Command("go", args...)
		cmd.Stdout = io.MultiWriter(&buf, os.Stderr)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("benchmark run failed: %w", err)
		}
		return benchgate.ParseSamples(&buf)
	case "-":
		return benchgate.ParseSamples(os.Stdin)
	default:
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return benchgate.ParseSamples(f)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(2)
}
