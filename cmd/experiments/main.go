// Command experiments regenerates the evaluation tables E1-E11 and the
// ablations A1-A3 documented in DESIGN.md and EXPERIMENTS.md.
//
// Usage:
//
//	experiments                # run everything (a few minutes)
//	experiments -run E3        # one experiment
//	experiments -quick         # reduced trial counts (~seconds)
//	experiments -seed 7        # change the reproducibility seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment ID (E1..E11, A1..A3) or 'all'")
	seed := flag.Uint64("seed", 1, "random seed (runs are deterministic per seed)")
	quick := flag.Bool("quick", false, "reduced trial counts")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Println(e.ID)
		}
		return
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	if strings.EqualFold(*run, "all") {
		for _, tbl := range experiments.All(cfg) {
			tbl.Render(os.Stdout)
		}
		return
	}
	tbl, ok := experiments.Run(*run, cfg)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *run)
		os.Exit(1)
	}
	tbl.Render(os.Stdout)
}
