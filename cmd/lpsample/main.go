// Command lpsample runs a one-pass Lp sampler over a textual update stream.
//
// Input: one update per line on stdin, "index delta" (0-based index,
// integer delta, negative allowed). Output: the sampled index and the
// ε-relative-error estimate of its value, or FAIL.
//
//	$ printf '0 5\n1 -3\n2 10\n' | lpsample -n 3 -p 1
//	index=2 estimate=10.0
//
// Use -p 0 for the zero relative error L0 sampler (uniform over the support,
// exact values).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	streamsample "repro"
)

func main() {
	n := flag.Int("n", 0, "vector dimension (required)")
	p := flag.Float64("p", 1, "sampling exponent p: 0 for L0, (0,2) for Lp")
	eps := flag.Float64("eps", 0.25, "relative error (Lp only)")
	delta := flag.Float64("delta", 0.1, "failure probability")
	seed := flag.Uint64("seed", 0, "seed (0 = nondeterministic)")
	flag.Parse()
	if *n <= 0 {
		fmt.Fprintln(os.Stderr, "lpsample: -n is required and must be positive")
		os.Exit(2)
	}
	opts := []streamsample.Option{streamsample.WithEps(*eps), streamsample.WithDelta(*delta)}
	if *seed != 0 {
		opts = append(opts, streamsample.WithSeed(*seed))
	}

	var feed func(i int, d int64)
	var report func()
	if *p == 0 {
		s := streamsample.NewL0Sampler(*n, opts...)
		feed = s.Update
		report = func() {
			if idx, val, ok := s.Sample(); ok {
				fmt.Printf("index=%d value=%d\n", idx, val)
			} else {
				fmt.Println("FAIL")
				os.Exit(1)
			}
		}
	} else {
		s := streamsample.NewLpSampler(*p, *n, opts...)
		feed = s.Update
		report = func() {
			if idx, est, ok := s.Sample(); ok {
				fmt.Printf("index=%d estimate=%.1f\n", idx, est)
			} else {
				fmt.Println("FAIL")
				os.Exit(1)
			}
		}
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		var i int
		var d int64
		text := sc.Text()
		if text == "" {
			continue
		}
		if _, err := fmt.Sscanf(text, "%d %d", &i, &d); err != nil {
			fmt.Fprintf(os.Stderr, "lpsample: line %d: %q: %v\n", line, text, err)
			os.Exit(2)
		}
		if i < 0 || i >= *n {
			fmt.Fprintf(os.Stderr, "lpsample: line %d: index %d out of [0,%d)\n", line, i, *n)
			os.Exit(2)
		}
		feed(i, d)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "lpsample: %v\n", err)
		os.Exit(2)
	}
	report()
}
