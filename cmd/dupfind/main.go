// Command dupfind finds a duplicated letter in a stream of items over the
// alphabet {0, ..., n-1} using the Theorem 3 sketch (O(log² n) bits).
//
// Input: one item per line on stdin. The classical guarantee covers streams
// of length n+1 (pigeonhole: a duplicate always exists); longer streams work
// too, shorter ones may legitimately FAIL when no duplicate exists.
//
//	$ seq 0 99 | { cat; echo 55; } | dupfind -n 100
//	duplicate=55
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	streamsample "repro"
)

func main() {
	n := flag.Int("n", 0, "alphabet size (required)")
	delta := flag.Float64("delta", 0.05, "failure probability")
	seed := flag.Uint64("seed", 0, "seed (0 = nondeterministic)")
	flag.Parse()
	if *n <= 0 {
		fmt.Fprintln(os.Stderr, "dupfind: -n is required and must be positive")
		os.Exit(2)
	}
	opts := []streamsample.Option{streamsample.WithDelta(*delta)}
	if *seed != 0 {
		opts = append(opts, streamsample.WithSeed(*seed))
	}
	f := streamsample.NewDuplicateFinder(*n, opts...)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line, count := 0, 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		var item int
		if _, err := fmt.Sscanf(text, "%d", &item); err != nil {
			fmt.Fprintf(os.Stderr, "dupfind: line %d: %q: %v\n", line, text, err)
			os.Exit(2)
		}
		if item < 0 || item >= *n {
			fmt.Fprintf(os.Stderr, "dupfind: line %d: item %d out of [0,%d)\n", line, item, *n)
			os.Exit(2)
		}
		f.Observe(item)
		count++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "dupfind: %v\n", err)
		os.Exit(2)
	}
	if letter, ok := f.Find(); ok {
		fmt.Printf("duplicate=%d\n", letter)
		return
	}
	fmt.Println("FAIL")
	os.Exit(1)
}
