// Command sketchload is the load harness of the serving tier: it simulates
// thousands of concurrent edge exporters pushing into one sketchd and
// reports what the tier actually delivered — ingest throughput, merge
// latency percentiles, and end-to-end agreement with serial single-process
// ingestion.
//
//	sketchload -addr http://127.0.0.1:7931 -exporters 10000 -len 1000000 -verify
//	sketchload -addr http://127.0.0.1:7931 -mode raw -exporters 1000
//
// The harness generates one deterministic stream from -seed, partitions it
// round-robin into -exporters disjoint slices, and drives every slice
// through its own simulated exporter:
//
//   - -mode sketch: each exporter ingests its slice into a local same-seed
//     sketch and POSTs the serialized bytes (the O(polylog) pattern the
//     paper's linearity enables — this is the default and the mode that
//     exercises the hierarchical merge tree).
//   - -mode raw: each exporter streams its slice as codec update frames
//     (exercising the server's sharded engine hot path).
//
// Exporters run on a bounded worker pool (-concurrency) so 10k exporters
// do not mean 10k OS-level connections at once — like real fleets, many
// exporters share fewer connections. Retryable failures (503 partial
// results, transport blips) are retried transparently via internal/retry;
// typed permanent errors (mismatch, negotiation) fail the run.
//
// With -verify the whole stream is also ingested serially in-process and
// the server's merged sketch must agree: byte-identical marshaled state
// (linear kinds merge exactly) and equal samples per seed.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	streamsample "repro"
	"repro/internal/retry"
	"repro/internal/sketchd"
	"repro/internal/stream"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:7931", "sketchd base URL")
	tenant := flag.String("tenant", "load", "target tenant")
	name := flag.String("name", "bench", "target sketch name")
	kind := flag.String("kind", "l0", "sketch kind: l0 | lp | hh")
	n := flag.Int("n", 1<<16, "vector dimension")
	length := flag.Int("len", 1<<20, "total stream length across all exporters")
	maxAbs := flag.Int64("max", 100, "maximum update magnitude")
	seed := flag.Uint64("seed", 1, "shared seed (stream generation and sketch randomness)")
	exporters := flag.Int("exporters", 10000, "simulated concurrent exporters")
	concurrency := flag.Int("concurrency", 256, "worker pool size (connections in flight)")
	mode := flag.String("mode", "sketch", "what exporters push: sketch | raw")
	retries := flag.Int("retries", 4, "attempts per request for retryable failures")
	verify := flag.Bool("verify", false, "compare the server's merged sketch against serial in-process ingestion")
	keep := flag.Bool("keep", false, "leave the sketch registered after the run")
	flag.Parse()

	if err := run(config{
		addr: *addr, tenant: *tenant, name: *name, kind: *kind,
		n: *n, length: *length, maxAbs: *maxAbs, seed: *seed,
		exporters: *exporters, concurrency: *concurrency, mode: *mode,
		retries: *retries, verify: *verify, keep: *keep,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "sketchload: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	addr, tenant, name, kind string
	n, length                int
	maxAbs                   int64
	seed                     uint64
	exporters, concurrency   int
	mode                     string
	retries                  int
	verify, keep             bool
}

func (c config) spec() sketchd.Spec {
	return sketchd.Spec{Kind: c.kind, N: c.n, Seed: c.seed}
}

func run(cfg config) error {
	if cfg.mode != "sketch" && cfg.mode != "raw" {
		return fmt.Errorf("unknown -mode %q (want sketch or raw)", cfg.mode)
	}
	if cfg.exporters < 1 || cfg.concurrency < 1 {
		return fmt.Errorf("-exporters and -concurrency must be positive")
	}

	r := rand.New(rand.NewPCG(cfg.seed, cfg.seed^0xD1B54A32D192ED03))
	st := stream.RandomTurnstile(cfg.n, cfg.length, cfg.maxAbs, r)

	// Round-robin partition: slice i gets updates i, i+E, i+2E, ... so the
	// E slices are disjoint and their union is the whole stream.
	parts := make([]stream.Stream, cfg.exporters)
	for i := range st {
		e := i % cfg.exporters
		parts[e] = append(parts[e], st[i])
	}

	ctx := context.Background()
	client := sketchd.NewClient(cfg.addr, sketchd.WithRetryPolicy(retry.Policy{Attempts: cfg.retries}))
	if _, err := client.Negotiate(ctx); err != nil {
		return fmt.Errorf("negotiating wire version: %w", err)
	}
	if err := client.Create(ctx, cfg.tenant, cfg.name, cfg.spec()); err != nil {
		return fmt.Errorf("creating %s/%s: %w", cfg.tenant, cfg.name, err)
	}
	if !cfg.keep {
		defer client.Delete(context.Background(), cfg.tenant, cfg.name) //nolint:errcheck // best-effort cleanup
	}

	// The worker pool: cfg.concurrency goroutines drain the exporter index
	// feed. Each exporter does its full local work (sketch build or frame
	// encode) inside the pool, like a real edge process would off-thread.
	var (
		next      atomic.Int64
		pushed    atomic.Int64
		firstErr  error
		errOnce   sync.Once
		latencies = make([]time.Duration, cfg.exporters)
		wg        sync.WaitGroup
	)
	fail := func(err error) { errOnce.Do(func() { firstErr = err }) }

	start := time.Now()
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.exporters || firstErr != nil {
					return
				}
				slice := parts[i]
				var err error
				var reqStart time.Time
				switch cfg.mode {
				case "sketch":
					local, berr := cfg.spec().Build()
					if berr != nil {
						fail(berr)
						return
					}
					local.ProcessBatch(slice)
					blob, merr := local.MarshalBinary()
					if merr != nil {
						fail(merr)
						return
					}
					reqStart = time.Now()
					err = client.PushSketch(ctx, cfg.tenant, cfg.name, blob, false)
				case "raw":
					reqStart = time.Now()
					_, err = client.PushUpdates(ctx, cfg.tenant, cfg.name, slice)
				}
				latencies[i] = time.Since(reqStart)
				if err != nil {
					fail(fmt.Errorf("exporter %d: %w", i, err))
					return
				}
				pushed.Add(int64(len(slice)))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return firstErr
	}

	lat := slices.Clone(latencies)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}

	fmt.Printf("sketchload: mode=%s exporters=%d concurrency=%d updates=%d elapsed=%v\n",
		cfg.mode, cfg.exporters, cfg.concurrency, pushed.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("sketchload: throughput %.0f updates/s, %.0f exporters/s\n",
		float64(pushed.Load())/elapsed.Seconds(), float64(cfg.exporters)/elapsed.Seconds())
	fmt.Printf("sketchload: request latency p50=%v p90=%v p99=%v max=%v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), lat[len(lat)-1].Round(time.Microsecond))

	if st, err := client.Statsz(ctx); err == nil {
		for _, s := range st.Sketches {
			if s.Tenant == cfg.tenant && s.Name == cfg.name {
				fmt.Printf("sketchload: server stats: engine routed=%d merge-tree uploads=%d leaf_folds=%d rejected=%d\n",
					s.Engine.Routed, s.MergeTree.Uploads, s.MergeTree.LeafFolds, s.MergeTree.Rejected)
			}
		}
	}

	if !cfg.verify {
		return nil
	}
	return verifyAgainstSerial(ctx, client, cfg, st)
}

// verifyAgainstSerial is the agreement check: the server's merged sketch
// must equal one in-process sketch that ingested the whole stream serially
// — byte-identical marshaled state (exact, by linearity) and equal samples.
func verifyAgainstSerial(ctx context.Context, client *sketchd.Client, cfg config, st stream.Stream) error {
	serial, err := cfg.spec().Build()
	if err != nil {
		return err
	}
	serial.ProcessBatch(st)
	want, err := serial.MarshalBinary()
	if err != nil {
		return err
	}
	got, err := client.Bytes(ctx, cfg.tenant, cfg.name)
	if err != nil {
		return fmt.Errorf("fetching merged sketch: %w", err)
	}
	if !slices.Equal(got, want) {
		return fmt.Errorf("verify FAILED: server merged sketch (%d bytes) differs from serial ingestion (%d bytes)",
			len(got), len(want))
	}
	sample, err := client.Sample(ctx, cfg.tenant, cfg.name)
	if err != nil {
		return fmt.Errorf("sampling merged sketch: %w", err)
	}
	fmt.Printf("sketchload: verify OK — merged state byte-identical to serial (%d bytes); sample %+v\n",
		len(want), sampleSummary(serial, sample))
	return nil
}

// sampleSummary draws the serial sketch's sample next to the server's for
// the human-readable verify line. By determinism (same seed, same state)
// the two draws agree, which the e2e test asserts; here it is reporting.
func sampleSummary(serial streamsample.Sketch, server sketchd.SampleResult) string {
	switch s := serial.(type) {
	case *streamsample.L0Sampler:
		i, v, ok := s.Sample()
		return fmt.Sprintf("server={index:%d value:%d ok:%v} serial={index:%d value:%d ok:%v}",
			server.Index, server.Value, server.Ok, i, v, ok)
	case *streamsample.LpSampler:
		i, est, ok := s.Sample()
		return fmt.Sprintf("server={index:%d estimate:%g ok:%v} serial={index:%d estimate:%g ok:%v}",
			server.Index, server.Estimate, server.Ok, i, est, ok)
	case *streamsample.HeavyHitters:
		return fmt.Sprintf("server=%v serial=%v", server.HeavyHitters, s.Report())
	default:
		return fmt.Sprintf("%+v", server)
	}
}
