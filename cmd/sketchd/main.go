// Command sketchd serves the multi-tenant sketch registry over HTTP: the
// serving tier of the distributed pattern — edge processes sketch locally,
// ship O(polylog) bytes or raw update frames, sketchd folds them (exactly,
// by sketch linearity) and answers sample queries.
//
//	sketchd -addr :8080 -data /var/lib/sketchd
//	sketchd -addr 127.0.0.1:0 -data ./state -shards 8 -fanin 128
//
// The first stdout line is "sketchd: listening on ADDR" with the bound
// address — scripts and the e2e harness parse it, so with -addr :0 the
// kernel-picked port is discoverable.
//
// Durability: every registered sketch persists under -data. Raw updates are
// journaled write-ahead and sealed into generations; pre-sketched uploads
// seal on their own cadence. SIGTERM/SIGINT drains: in-flight requests
// finish, every sketch checkpoints, and a restart recovers the registry
// byte-identically. SIGKILL loses at most the un-sealed upload tail (raw
// updates survive via the journal).
//
// REPRO_FAULTS=seed:rate enables deterministic fault injection on the
// engine and checkpoint paths (chaos testing; see internal/faultinject).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/sketchd"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7931", "listen address (host:port; :0 picks a free port)")
	data := flag.String("data", "", "durable state directory (empty = in-memory only, no crash recovery)")
	shards := flag.Int("shards", 0, "engine shards per sketch (0 = default 4)")
	batch := flag.Int("batch", 0, "engine batch size (0 = default 2048)")
	ckptEvery := flag.Int("checkpoint-every", 0, "raw updates between durable generations per sketch (0 = default 65536)")
	uploadEvery := flag.Int("upload-checkpoint-every", 0, "sketch uploads between durable seals per sketch (0 = default 64)")
	leaves := flag.Int("leaves", 0, "merge-tree leaf aggregators per sketch (0 = default 8)")
	fanIn := flag.Int("fanin", 0, "merge-tree leaf fan-in (0 = default 64)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	flag.Parse()

	inj, err := faultinject.FromEnv()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sketchd: %v\n", err)
		os.Exit(2)
	}
	if err := run(*addr, sketchd.RegistryConfig{
		Dir:                   *data,
		Shards:                *shards,
		BatchSize:             *batch,
		CheckpointEvery:       *ckptEvery,
		UploadCheckpointEvery: *uploadEvery,
		Leaves:                *leaves,
		FanIn:                 *fanIn,
		Injector:              inj,
	}, *drainTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "sketchd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, cfg sketchd.RegistryConfig, drainTimeout time.Duration) error {
	reg, err := sketchd.OpenRegistry(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("sketchd: listening on %s\n", ln.Addr())

	srv := &http.Server{
		Handler:           sketchd.NewServer(reg),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "sketchd: %v: draining\n", sig)
	case err := <-errc:
		reg.Drain() //nolint:errcheck // the serve error is the story here
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "sketchd: shutdown: %v\n", err)
	}
	if err := reg.Drain(); err != nil {
		return fmt.Errorf("draining registry: %w", err)
	}
	fmt.Fprintln(os.Stderr, "sketchd: drained, all sketches sealed")
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
