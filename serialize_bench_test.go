package streamsample

import (
	"fmt"
	"testing"
)

// benchSketches builds one loaded instance of each kind for the codec
// microbenchmarks (the bench-codec Makefile target).
func benchSketches(b *testing.B) []struct {
	name string
	s    Sketch
} {
	b.Helper()
	out := []struct {
		name string
		s    Sketch
	}{}
	for _, tc := range sketchCases() {
		s := tc.build(42)
		tc.feed(s)
		out = append(out, struct {
			name string
			s    Sketch
		}{tc.name, s})
	}
	return out
}

// BenchmarkMarshalSketch reports marshal ns/op and serialized bytes per
// sketch kind.
func BenchmarkMarshalSketch(b *testing.B) {
	for _, bs := range benchSketches(b) {
		b.Run(bs.name, func(b *testing.B) {
			data, err := bs.s.MarshalBinary()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(data)), "wire-bytes")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bs.s.MarshalBinary(); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(data)))
		})
	}
}

// BenchmarkUnmarshalSketch reports the full Load cost — header validation,
// same-seed reconstruction and state restore — per sketch kind.
func BenchmarkUnmarshalSketch(b *testing.B) {
	for _, bs := range benchSketches(b) {
		b.Run(bs.name, func(b *testing.B) {
			data, err := bs.s.MarshalBinary()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Load(data); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(data)))
		})
	}
}

// BenchmarkShardedExportMerge measures the whole distributed round:
// marshal S shards, load them, merge into one.
func BenchmarkShardedExportMerge(b *testing.B) {
	for _, shards := range []int{2, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			parts := make([]*L0Sampler, shards)
			for s := range parts {
				parts[s] = NewL0Sampler(4096, WithSeed(99))
				feedTurnstile(parts[s], uint64(s), 4096, 2000)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var merged Sketch
				for _, p := range parts {
					data, err := p.MarshalBinary()
					if err != nil {
						b.Fatal(err)
					}
					loaded, err := Load(data)
					if err != nil {
						b.Fatal(err)
					}
					if merged == nil {
						merged = loaded
						continue
					}
					if err := merged.Merge(loaded); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
