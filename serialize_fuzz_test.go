package streamsample

import (
	"errors"
	"testing"

	"repro/internal/codec"
)

// FuzzLoad drives arbitrary bytes through the public Load: it must never
// panic or attempt absurd allocations, and every rejection must carry one
// of the codec sentinels. Valid sketches of every kind seed the corpus so
// the fuzzer mutates realistic headers.
func FuzzLoad(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("LPSK"))
	for _, tc := range sketchCases() {
		s := tc.build(1)
		tc.feed(s)
		data, err := s.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}

	sentinels := []error{
		codec.ErrBadMagic, codec.ErrBadVersion, codec.ErrBadKind,
		codec.ErrBadConfig, codec.ErrBadFingerprint,
		codec.ErrTruncated, codec.ErrTrailingData,
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Load(data)
		if err != nil {
			for _, want := range sentinels {
				if errors.Is(err, want) {
					return
				}
			}
			t.Fatalf("Load returned untyped error %v", err)
		}
		// A successfully loaded sketch must be usable: queryable, mergeable
		// with itself via a second Load, and re-marshalable.
		if s.SpaceBits() <= 0 {
			t.Fatal("loaded sketch reports non-positive SpaceBits")
		}
		twin, err := Load(data)
		if err != nil {
			t.Fatalf("second Load of accepted bytes failed: %v", err)
		}
		if err := s.Merge(twin); err != nil {
			t.Fatalf("loaded sketch rejects its own twin: %v", err)
		}
		if _, err := s.MarshalBinary(); err != nil {
			t.Fatalf("re-marshal of loaded sketch failed: %v", err)
		}
	})
}
