// Package streamsample is the public API of this repository: turnstile-stream
// Lp samplers and their applications, reproducing Jowhari, Sağlam and Tardos,
// "Tight Bounds for Lp Samplers, Finding Duplicates in Streams, and Related
// Problems" (PODS 2011).
//
// # The Sketch interface
//
// Every public type is a Sketch: a linear summary of a vector x ∈ Z^n
// defined by a stream of updates (i, Δ). The interface is the whole
// distributed contract in one place —
//
//	type Sketch interface {
//		Process(Update)            // one turnstile update
//		ProcessBatch([]Update)     // the batched ingestion hot path
//		Merge(Sketch) error        // fold a same-seed replica's state in
//		SpaceBits() int64          // the paper's space accounting
//		encoding.BinaryMarshaler   // serialize: config + seed + state
//		encoding.BinaryUnmarshaler // rebuild in place from those bytes
//	}
//
// Because the structures are linear, same-seed sketches summarize sums of
// vectors: shard a stream across processes, give every process the same
// WithSeed value, MarshalBinary each shard's sketch, move the bytes, Load
// them anywhere, and Merge — the merged sketch is exactly the sketch of the
// whole stream. Load reconstructs a ready-to-merge sketch from the bytes
// alone (the versioned wire format carries the config block and seed; see
// internal/codec for the layout), and cross-seed or cross-config merges
// fail with the typed sentinels ErrSeedMismatch and ErrConfigMismatch.
//
// # The samplers
//
//   - LpSampler (0 < p < 2): return index i with probability
//     ≈ (1±ε)|x_i|^p/‖x‖_p^p plus an ε-relative-error estimate of x_i, in
//     O(ε^{-max(1,p)} log² n) bits (Theorem 1).
//   - L0Sampler: return a uniformly random element of the support of x with
//     its exact value, in O(log² n) bits (Theorem 2).
//   - DuplicateFinder: given a stream of n+1 letters over [n], return a
//     repeated letter in O(log² n) bits (Theorem 3).
//   - HeavyHitters: return a valid Lp heavy-hitter set in O(φ^{-p} log² n)
//     bits (§4.4), matching the paper's Theorem 9 lower bound.
//   - TwoPassL0Sampler, FpEstimator (extensions.go): the appendix two-pass
//     sampler and the F_p (p > 2) moment application.
//
// Everything is implemented from scratch on the standard library; the
// internal packages expose the substrates (count-sketch, p-stable norm
// estimation, exact sparse recovery, Nisan's PRG, k-wise independent
// hashing) for users who need the building blocks.
package streamsample

import (
	"encoding"
	"fmt"
	"math/rand/v2"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/duplicates"
	"repro/internal/heavyhitters"
	"repro/internal/stream"
)

// Update is one turnstile update: x[Index] += Delta.
type Update = stream.Update

// Sketch is the common contract of every public type: a serializable,
// remotely mergeable linear summary of a turnstile stream. See the package
// documentation for the distributed pattern it enables.
type Sketch interface {
	// Process applies one update.
	Process(u Update)
	// ProcessBatch applies a batch through the sketch's batched hot path;
	// the resulting state matches repeated Process calls exactly.
	ProcessBatch(batch []Update)
	// Merge folds another sketch's state in, so the receiver summarizes the
	// sum of the two underlying vectors. The argument must be the same
	// concrete type, built with the same parameters and WithSeed value;
	// anything else fails with ErrNilMerge, ErrConfigMismatch or
	// ErrSeedMismatch (match with errors.Is).
	Merge(other Sketch) error
	// SpaceBits reports the sketch size under the paper's accounting.
	SpaceBits() int64
	// MarshalBinary serializes the sketch — config block, construction
	// seed and linear state — into the versioned wire format that Load and
	// UnmarshalBinary read back. Readers hold reconstructed sketches to a
	// ~1 GiB derived-state budget as a hostile-bytes safety valve, so
	// deliberately extreme configurations (far beyond any polylog-space
	// use of the paper's structures) do not round-trip.
	encoding.BinaryMarshaler
	// UnmarshalBinary rebuilds the receiver in place from MarshalBinary
	// bytes of the same sketch kind.
	encoding.BinaryUnmarshaler
}

// Merge error sentinels, re-exported from the wire-format package so
// internal and public layers report the same identities. Every Merge in the
// repository wraps one of these; dispatch with errors.Is.
var (
	// ErrNilMerge is returned by Merge when handed a nil sketch.
	ErrNilMerge = codec.ErrNilMerge
	// ErrSeedMismatch is returned when the two sketches were built from
	// different seeds — linear merging requires same-seed replicas.
	ErrSeedMismatch = codec.ErrSeedMismatch
	// ErrConfigMismatch is returned when the two sketches differ in
	// concrete type, shape or construction parameters.
	ErrConfigMismatch = codec.ErrConfigMismatch
)

// options collects cross-cutting construction knobs.
type options struct {
	seed    uint64
	seeded  bool
	eps     float64
	delta   float64
	copies  int
	sBudget int
	nested  bool
}

// Option configures a sampler at construction time.
type Option func(*options)

// WithSeed makes the sampler deterministic. Two samplers of the same type
// and dimension built with the same seed share all randomness — a
// requirement for Merge.
func WithSeed(seed uint64) Option {
	return func(o *options) { o.seed = seed; o.seeded = true }
}

// WithEps sets the relative-error parameter ε (LpSampler only; default 0.25).
func WithEps(eps float64) Option { return func(o *options) { o.eps = eps } }

// WithDelta sets the failure probability δ (default 0.2).
func WithDelta(delta float64) Option { return func(o *options) { o.delta = delta } }

// WithCopies overrides the repetition count of the Lp sampler.
func WithCopies(v int) Option { return func(o *options) { o.copies = v } }

// WithSparsity overrides the per-level recovery budget of the L0 sampler.
func WithSparsity(s int) Option { return func(o *options) { o.sBudget = s } }

// WithNestedLevels switches the L0 sampler to the §2.1 nested dyadic level
// assignment (I_1 ⊆ I_2 ⊆ ...): one PRG walk per update decides every
// subsampling level at once, instead of independent per-level coins.
func WithNestedLevels() Option { return func(o *options) { o.nested = true } }

// buildOptions applies the options and materializes a concrete seed: a
// sketch built without WithSeed draws one random seed up front and derives
// all randomness from it, so every sketch — seeded or not — serializes to
// bytes that reconstruct it exactly. Out-of-range ε/δ fall back to the
// defaults here (rather than in the inner constructors), keeping the
// recorded config block canonical.
func buildOptions(opts []Option) options {
	o := options{eps: 0.25, delta: 0.2}
	for _, f := range opts {
		f(&o)
	}
	if !(o.eps > 0 && o.eps < 1) {
		o.eps = 0.25
	}
	if !(o.delta > 0 && o.delta < 1) {
		o.delta = 0.2
	}
	if o.copies < 0 {
		o.copies = 0
	}
	if o.sBudget < 0 {
		o.sBudget = 0
	}
	if !o.seeded {
		o.seed = rand.Uint64()
		o.seeded = true
	}
	return o
}

func (o options) rng() *rand.Rand {
	return rand.New(rand.NewPCG(o.seed, o.seed^0x9E3779B97F4A7C15))
}

// mergeTarget resolves the Sketch argument of a Merge call to the concrete
// type T, mapping nil interfaces, typed nils and foreign types onto the
// error sentinels.
func mergeTarget[T any](other Sketch) (*T, error) {
	o, ok := any(other).(*T)
	if !ok {
		if other == nil {
			return nil, fmt.Errorf("streamsample: %w", ErrNilMerge)
		}
		return nil, fmt.Errorf("streamsample: merging %T into %T: %w", other, (*T)(nil), ErrConfigMismatch)
	}
	if o == nil {
		return nil, fmt.Errorf("streamsample: %w", ErrNilMerge)
	}
	return o, nil
}

// ---------------------------------------------------------------------------
// Lp sampler
// ---------------------------------------------------------------------------

// LpSampler samples coordinates proportionally to |x_i|^p.
type LpSampler struct {
	p     float64
	n     int
	opts  options
	inner *core.LpSampler
}

// Compile-time check: every public type satisfies the Sketch contract.
var _ Sketch = (*LpSampler)(nil)

// NewLpSampler creates a sampler for p in (0,2) over vectors of dimension n.
func NewLpSampler(p float64, n int, opts ...Option) *LpSampler {
	o := buildOptions(opts)
	return &LpSampler{p: p, n: n, opts: o, inner: core.NewLpSampler(core.LpConfig{
		P:      p,
		N:      n,
		Eps:    o.eps,
		Delta:  o.delta,
		Copies: o.copies,
	}, o.rng())}
}

// Update applies x[i] += delta.
func (s *LpSampler) Update(i int, delta int64) {
	s.inner.Process(stream.Update{Index: i, Delta: delta})
}

// Process implements the stream.Sink interface used by internal generators.
func (s *LpSampler) Process(u Update) { s.inner.Process(u) }

// ProcessBatch implements the stream.BatchSink fast path: hash evaluations
// and scaling factors are amortized across the batch.
func (s *LpSampler) ProcessBatch(batch []Update) { s.inner.ProcessBatch(batch) }

// Merge adds another sampler's state; both must be *LpSampler built with
// the same parameters and WithSeed value so they share randomness. After
// merging, this sampler summarizes the sum of the two vectors.
func (s *LpSampler) Merge(other Sketch) error {
	o, err := mergeTarget[LpSampler](other)
	if err != nil {
		return err
	}
	return s.inner.Merge(o.inner)
}

// Sample returns an index distributed ≈ proportionally to |x_i|^p, with a
// (1±ε)-accurate estimate of x_i. ok is false when the sampler fails
// (probability ≤ δ; always for the zero vector).
func (s *LpSampler) Sample() (index int, estimate float64, ok bool) {
	out, ok := s.inner.Sample()
	return out.Index, out.Estimate, ok
}

// SpaceBits reports the sketch size under the paper's accounting.
func (s *LpSampler) SpaceBits() int64 { return s.inner.SpaceBits() }

// ---------------------------------------------------------------------------
// L0 sampler
// ---------------------------------------------------------------------------

// L0Sampler samples uniformly from the support of x.
type L0Sampler struct {
	n     int
	opts  options
	inner *core.L0Sampler
}

var _ Sketch = (*L0Sampler)(nil)

// NewL0Sampler creates the sampler for dimension n.
func NewL0Sampler(n int, opts ...Option) *L0Sampler {
	o := buildOptions(opts)
	return &L0Sampler{n: n, opts: o, inner: core.NewL0Sampler(core.L0Config{
		N:            n,
		Delta:        o.delta,
		SOverride:    o.sBudget,
		NestedLevels: o.nested,
	}, o.rng())}
}

// Update applies x[i] += delta.
func (s *L0Sampler) Update(i int, delta int64) {
	s.inner.Process(stream.Update{Index: i, Delta: delta})
}

// Process implements the stream.Sink interface.
func (s *L0Sampler) Process(u Update) { s.inner.Process(u) }

// ProcessBatch implements the stream.BatchSink fast path.
func (s *L0Sampler) ProcessBatch(batch []Update) { s.inner.ProcessBatch(batch) }

// Sample returns a uniform support element and its exact value x_i.
func (s *L0Sampler) Sample() (index int, value int64, ok bool) {
	out, ok := s.inner.Sample()
	return out.Index, int64(out.Estimate), ok
}

// Merge adds another sampler's state; both must be *L0Sampler built with
// the same dimension and WithSeed value so they share randomness. After
// merging, this sampler summarizes the sum of the two vectors. Replicas
// that do not share a seed are rejected with ErrSeedMismatch.
func (s *L0Sampler) Merge(other Sketch) error {
	o, err := mergeTarget[L0Sampler](other)
	if err != nil {
		return err
	}
	return s.inner.Merge(o.inner)
}

// SpaceBits reports the sketch size.
func (s *L0Sampler) SpaceBits() int64 { return s.inner.SpaceBits() }

// ---------------------------------------------------------------------------
// Duplicates
// ---------------------------------------------------------------------------

// DuplicateFinder finds a repeated letter in a stream of n+1 letters over
// the alphabet {0, ..., n-1} (Theorem 3).
type DuplicateFinder struct {
	n     int
	opts  options
	inner *duplicates.Finder
}

var _ Sketch = (*DuplicateFinder)(nil)

// NewDuplicateFinder creates the finder for alphabet size n.
func NewDuplicateFinder(n int, opts ...Option) *DuplicateFinder {
	o := buildOptions(opts)
	return &DuplicateFinder{n: n, opts: o, inner: duplicates.NewFinder(n, o.delta, o.rng())}
}

// Observe consumes the next letter of the stream.
func (d *DuplicateFinder) Observe(letter int) { d.inner.ProcessItem(letter) }

// Process implements stream.Sink on the letters-as-updates encoding.
func (d *DuplicateFinder) Process(u Update) { d.inner.Process(u) }

// ProcessBatch implements the stream.BatchSink fast path.
func (d *DuplicateFinder) ProcessBatch(batch []Update) { d.inner.ProcessBatch(batch) }

// Merge combines another same-seed finder's observations; the pigeonhole
// prefix each constructor fed is compensated so the merged finder behaves as
// if it had seen the concatenated stream.
func (d *DuplicateFinder) Merge(other Sketch) error {
	o, err := mergeTarget[DuplicateFinder](other)
	if err != nil {
		return err
	}
	return d.inner.Merge(o.inner)
}

// Find returns a letter that appeared at least twice. ok is false with
// probability at most δ; a returned letter is wrong only with low
// probability.
func (d *DuplicateFinder) Find() (letter int, ok bool) {
	res := d.inner.Find()
	if res.Kind != duplicates.Duplicate {
		return -1, false
	}
	return res.Index, true
}

// SpaceBits reports the sketch size.
func (d *DuplicateFinder) SpaceBits() int64 { return d.inner.SpaceBits() }

// ---------------------------------------------------------------------------
// Heavy hitters
// ---------------------------------------------------------------------------

// HeavyHitters maintains an Lp heavy-hitters sketch: Report returns a set
// containing every i with |x_i| ≥ φ‖x‖_p and no i with |x_i| ≤ (φ/2)‖x‖_p
// (with high probability).
type HeavyHitters struct {
	p     float64
	phi   float64
	n     int
	opts  options
	inner *heavyhitters.Sketch
}

var _ Sketch = (*HeavyHitters)(nil)

// NewHeavyHitters creates the sketch for norm exponent p in (0,2] and
// threshold φ in (0,1).
func NewHeavyHitters(p, phi float64, n int, opts ...Option) *HeavyHitters {
	o := buildOptions(opts)
	return &HeavyHitters{p: p, phi: phi, n: n, opts: o, inner: heavyhitters.New(heavyhitters.Config{
		P:   p,
		Phi: phi,
		N:   n,
	}, o.rng())}
}

// Update applies x[i] += delta.
func (h *HeavyHitters) Update(i int, delta int64) {
	h.inner.Process(stream.Update{Index: i, Delta: delta})
}

// Process implements the stream.Sink interface.
func (h *HeavyHitters) Process(u Update) { h.inner.Process(u) }

// ProcessBatch implements the stream.BatchSink fast path.
func (h *HeavyHitters) ProcessBatch(batch []Update) { h.inner.ProcessBatch(batch) }

// Merge adds another sketch's state; both must be *HeavyHitters built with
// the same parameters and WithSeed value so they share randomness.
func (h *HeavyHitters) Merge(other Sketch) error {
	o, err := mergeTarget[HeavyHitters](other)
	if err != nil {
		return err
	}
	return h.inner.Merge(o.inner)
}

// Report returns the heavy-hitter set.
func (h *HeavyHitters) Report() []int { return h.inner.HeavyHitters() }

// SpaceBits reports the sketch size.
func (h *HeavyHitters) SpaceBits() int64 { return h.inner.SpaceBits() }
