// Package streamsample is the public API of this repository: turnstile-stream
// Lp samplers and their applications, reproducing Jowhari, Sağlam and Tardos,
// "Tight Bounds for Lp Samplers, Finding Duplicates in Streams, and Related
// Problems" (PODS 2011).
//
// A stream of updates (i, Δ) defines a vector x ∈ Z^n. The samplers answer:
//
//   - LpSampler (0 < p < 2): return index i with probability
//     ≈ (1±ε)|x_i|^p/‖x‖_p^p plus an ε-relative-error estimate of x_i, in
//     O(ε^{-max(1,p)} log² n) bits (Theorem 1).
//   - L0Sampler: return a uniformly random element of the support of x with
//     its exact value, in O(log² n) bits (Theorem 2).
//   - DuplicateFinder: given a stream of n+1 letters over [n], return a
//     repeated letter in O(log² n) bits (Theorem 3).
//   - HeavyHitters: return a valid Lp heavy-hitter set in O(φ^{-p} log² n)
//     bits (§4.4), matching the paper's Theorem 9 lower bound.
//
// All structures are linear sketches: updates may be positive or negative,
// insertions may be interleaved with deletions, and same-seed sketches can
// be merged (L0Sampler.Merge) to summarize sums of vectors.
//
// Everything is implemented from scratch on the standard library; the
// internal packages expose the substrates (count-sketch, p-stable norm
// estimation, exact sparse recovery, Nisan's PRG, k-wise independent
// hashing) for users who need the building blocks.
package streamsample

import (
	"errors"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/duplicates"
	"repro/internal/heavyhitters"
	"repro/internal/stream"
)

// errNilMerge is returned by every Merge wrapper handed a nil sketch.
var errNilMerge = errors.New("streamsample: merging a nil sketch")

// Update is one turnstile update: x[Index] += Delta.
type Update = stream.Update

// options collects cross-cutting construction knobs.
type options struct {
	seed    uint64
	seeded  bool
	eps     float64
	delta   float64
	copies  int
	sBudget int
	nested  bool
}

// Option configures a sampler at construction time.
type Option func(*options)

// WithSeed makes the sampler deterministic. Two samplers of the same type
// and dimension built with the same seed share all randomness — a
// requirement for Merge.
func WithSeed(seed uint64) Option {
	return func(o *options) { o.seed = seed; o.seeded = true }
}

// WithEps sets the relative-error parameter ε (LpSampler only; default 0.25).
func WithEps(eps float64) Option { return func(o *options) { o.eps = eps } }

// WithDelta sets the failure probability δ (default 0.2).
func WithDelta(delta float64) Option { return func(o *options) { o.delta = delta } }

// WithCopies overrides the repetition count of the Lp sampler.
func WithCopies(v int) Option { return func(o *options) { o.copies = v } }

// WithSparsity overrides the per-level recovery budget of the L0 sampler.
func WithSparsity(s int) Option { return func(o *options) { o.sBudget = s } }

// WithNestedLevels switches the L0 sampler to the §2.1 nested dyadic level
// assignment (I_1 ⊆ I_2 ⊆ ...): one PRG walk per update decides every
// subsampling level at once, instead of independent per-level coins.
func WithNestedLevels() Option { return func(o *options) { o.nested = true } }

func buildOptions(opts []Option) options {
	o := options{eps: 0.25, delta: 0.2}
	for _, f := range opts {
		f(&o)
	}
	return o
}

func (o options) rng() *rand.Rand {
	if o.seeded {
		return rand.New(rand.NewPCG(o.seed, o.seed^0x9E3779B97F4A7C15))
	}
	return rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64()))
}

// ---------------------------------------------------------------------------
// Lp sampler
// ---------------------------------------------------------------------------

// LpSampler samples coordinates proportionally to |x_i|^p.
type LpSampler struct {
	inner *core.LpSampler
}

// NewLpSampler creates a sampler for p in (0,2) over vectors of dimension n.
func NewLpSampler(p float64, n int, opts ...Option) *LpSampler {
	o := buildOptions(opts)
	return &LpSampler{inner: core.NewLpSampler(core.LpConfig{
		P:      p,
		N:      n,
		Eps:    o.eps,
		Delta:  o.delta,
		Copies: o.copies,
	}, o.rng())}
}

// Update applies x[i] += delta.
func (s *LpSampler) Update(i int, delta int64) {
	s.inner.Process(stream.Update{Index: i, Delta: delta})
}

// Process implements the stream.Sink interface used by internal generators.
func (s *LpSampler) Process(u Update) { s.inner.Process(u) }

// ProcessBatch implements the stream.BatchSink fast path: hash evaluations
// and scaling factors are amortized across the batch.
func (s *LpSampler) ProcessBatch(batch []Update) { s.inner.ProcessBatch(batch) }

// Merge adds another sampler's state; both must be built with the same
// parameters and WithSeed value so they share randomness. After merging,
// this sampler summarizes the sum of the two vectors.
func (s *LpSampler) Merge(other *LpSampler) error {
	if other == nil {
		return errNilMerge
	}
	return s.inner.Merge(other.inner)
}

// Sample returns an index distributed ≈ proportionally to |x_i|^p, with a
// (1±ε)-accurate estimate of x_i. ok is false when the sampler fails
// (probability ≤ δ; always for the zero vector).
func (s *LpSampler) Sample() (index int, estimate float64, ok bool) {
	out, ok := s.inner.Sample()
	return out.Index, out.Estimate, ok
}

// SpaceBits reports the sketch size under the paper's accounting.
func (s *LpSampler) SpaceBits() int64 { return s.inner.SpaceBits() }

// ---------------------------------------------------------------------------
// L0 sampler
// ---------------------------------------------------------------------------

// L0Sampler samples uniformly from the support of x.
type L0Sampler struct {
	inner *core.L0Sampler
}

// NewL0Sampler creates the sampler for dimension n.
func NewL0Sampler(n int, opts ...Option) *L0Sampler {
	o := buildOptions(opts)
	return &L0Sampler{inner: core.NewL0Sampler(core.L0Config{
		N:            n,
		Delta:        o.delta,
		SOverride:    o.sBudget,
		NestedLevels: o.nested,
	}, o.rng())}
}

// Update applies x[i] += delta.
func (s *L0Sampler) Update(i int, delta int64) {
	s.inner.Process(stream.Update{Index: i, Delta: delta})
}

// Process implements the stream.Sink interface.
func (s *L0Sampler) Process(u Update) { s.inner.Process(u) }

// ProcessBatch implements the stream.BatchSink fast path.
func (s *L0Sampler) ProcessBatch(batch []Update) { s.inner.ProcessBatch(batch) }

// Sample returns a uniform support element and its exact value x_i.
func (s *L0Sampler) Sample() (index int, value int64, ok bool) {
	out, ok := s.inner.Sample()
	return out.Index, int64(out.Estimate), ok
}

// Merge adds another sampler's state; both must be built with the same
// dimension and WithSeed value so they share randomness. After merging, this
// sampler summarizes the sum of the two vectors. Replicas that do not share
// a seed are rejected with an error.
func (s *L0Sampler) Merge(other *L0Sampler) error {
	if other == nil {
		return errNilMerge
	}
	return s.inner.Merge(other.inner)
}

// SpaceBits reports the sketch size.
func (s *L0Sampler) SpaceBits() int64 { return s.inner.SpaceBits() }

// ---------------------------------------------------------------------------
// Duplicates
// ---------------------------------------------------------------------------

// DuplicateFinder finds a repeated letter in a stream of n+1 letters over
// the alphabet {0, ..., n-1} (Theorem 3).
type DuplicateFinder struct {
	inner *duplicates.Finder
}

// NewDuplicateFinder creates the finder for alphabet size n.
func NewDuplicateFinder(n int, opts ...Option) *DuplicateFinder {
	o := buildOptions(opts)
	return &DuplicateFinder{inner: duplicates.NewFinder(n, o.delta, o.rng())}
}

// Observe consumes the next letter of the stream.
func (d *DuplicateFinder) Observe(letter int) { d.inner.ProcessItem(letter) }

// Process implements stream.Sink on the letters-as-updates encoding.
func (d *DuplicateFinder) Process(u Update) { d.inner.Process(u) }

// ProcessBatch implements the stream.BatchSink fast path.
func (d *DuplicateFinder) ProcessBatch(batch []Update) { d.inner.ProcessBatch(batch) }

// Merge combines another same-seed finder's observations; the pigeonhole
// prefix each constructor fed is compensated so the merged finder behaves as
// if it had seen the concatenated stream.
func (d *DuplicateFinder) Merge(other *DuplicateFinder) error {
	if other == nil {
		return errNilMerge
	}
	return d.inner.Merge(other.inner)
}

// Find returns a letter that appeared at least twice. ok is false with
// probability at most δ; a returned letter is wrong only with low
// probability.
func (d *DuplicateFinder) Find() (letter int, ok bool) {
	res := d.inner.Find()
	if res.Kind != duplicates.Duplicate {
		return -1, false
	}
	return res.Index, true
}

// SpaceBits reports the sketch size.
func (d *DuplicateFinder) SpaceBits() int64 { return d.inner.SpaceBits() }

// ---------------------------------------------------------------------------
// Heavy hitters
// ---------------------------------------------------------------------------

// HeavyHitters maintains an Lp heavy-hitters sketch: Report returns a set
// containing every i with |x_i| ≥ φ‖x‖_p and no i with |x_i| ≤ (φ/2)‖x‖_p
// (with high probability).
type HeavyHitters struct {
	inner *heavyhitters.Sketch
}

// NewHeavyHitters creates the sketch for norm exponent p in (0,2] and
// threshold φ in (0,1).
func NewHeavyHitters(p, phi float64, n int, opts ...Option) *HeavyHitters {
	o := buildOptions(opts)
	return &HeavyHitters{inner: heavyhitters.New(heavyhitters.Config{
		P:   p,
		Phi: phi,
		N:   n,
	}, o.rng())}
}

// Update applies x[i] += delta.
func (h *HeavyHitters) Update(i int, delta int64) {
	h.inner.Process(stream.Update{Index: i, Delta: delta})
}

// Process implements the stream.Sink interface.
func (h *HeavyHitters) Process(u Update) { h.inner.Process(u) }

// ProcessBatch implements the stream.BatchSink fast path.
func (h *HeavyHitters) ProcessBatch(batch []Update) { h.inner.ProcessBatch(batch) }

// Merge adds another sketch's state; both must be built with the same
// parameters and WithSeed value so they share randomness.
func (h *HeavyHitters) Merge(other *HeavyHitters) error {
	if other == nil {
		return errNilMerge
	}
	return h.inner.Merge(other.inner)
}

// Report returns the heavy-hitter set.
func (h *HeavyHitters) Report() []int { return h.inner.HeavyHitters() }

// SpaceBits reports the sketch size.
func (h *HeavyHitters) SpaceBits() int64 { return h.inner.SpaceBits() }
